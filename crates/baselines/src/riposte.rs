//! A simplified Riposte baseline (Corrigan-Gibbs, Boneh, Mazières; S&P 2015).
//!
//! Riposte is the centralized anonymous-microblogging system Atom compares
//! against in Table 12. Clients write their message into a random cell of a
//! `√M × √M` table replicated at two servers, using a distributed point
//! function (DPF) so that neither server learns the cell. The crucial cost
//! property is that *every server must expand every client's DPF over the
//! whole table*, so per-server work grows as `Ω(M²)` for `M` messages —
//! which is why Riposte cannot scale horizontally and why Atom overtakes it.
//!
//! This module implements a working two-server write path with the classic
//! √M-compressed DPF (row seeds + a correction row), sufficient to reproduce
//! the cost shape; the audit protocol that detects malformed client requests
//! is out of scope and represented only in the cost model.

use rand::{CryptoRng, RngCore};
use serde::{Deserialize, Serialize};

use atom_crypto::keccak::Shake256;

/// A two-server Riposte database of fixed-size message cells.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RiposteServer {
    /// Number of rows (√cells).
    pub rows: usize,
    /// Number of columns (√cells).
    pub cols: usize,
    /// Message cell size in bytes.
    pub cell_len: usize,
    /// The XOR-accumulated table, row-major.
    table: Vec<u8>,
    /// Number of PRG bytes expanded so far (the dominant cost driver).
    pub prg_bytes_expanded: u64,
}

impl RiposteServer {
    /// Creates an empty server-side table.
    pub fn new(rows: usize, cols: usize, cell_len: usize) -> Self {
        Self {
            rows,
            cols,
            cell_len,
            table: vec![0u8; rows * cols * cell_len],
            prg_bytes_expanded: 0,
        }
    }

    /// Applies one client's DPF share to the table.
    pub fn apply(&mut self, share: &DpfShare) {
        assert_eq!(share.row_seeds.len(), self.rows);
        assert_eq!(share.correction.len(), self.cols * self.cell_len);
        for (row, seed) in share.row_seeds.iter().enumerate() {
            let mut expanded = prg_expand(seed, self.cols * self.cell_len);
            self.prg_bytes_expanded += expanded.len() as u64;
            if share.correction_rows & (1u128 << (row % 128)) != 0 && share.apply_correction[row] {
                for (byte, corr) in expanded.iter_mut().zip(share.correction.iter()) {
                    *byte ^= corr;
                }
            }
            let offset = row * self.cols * self.cell_len;
            for (slot, byte) in expanded.into_iter().enumerate() {
                self.table[offset + slot] ^= byte;
            }
        }
    }

    /// Reads the plaintext table by XOR-combining both servers' tables.
    pub fn combine(&self, other: &RiposteServer) -> Vec<Vec<u8>> {
        assert_eq!(self.table.len(), other.table.len());
        let combined: Vec<u8> = self
            .table
            .iter()
            .zip(other.table.iter())
            .map(|(a, b)| a ^ b)
            .collect();
        combined
            .chunks(self.cell_len)
            .map(|chunk| chunk.to_vec())
            .collect()
    }
}

/// One server's share of a client's distributed point function.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DpfShare {
    /// One PRG seed per row.
    pub row_seeds: Vec<[u8; 16]>,
    /// Whether this server applies the correction row for each row.
    pub apply_correction: Vec<bool>,
    /// Bit mask kept for wire-format parity with the original scheme.
    pub correction_rows: u128,
    /// The correction row (`cols × cell_len` bytes).
    pub correction: Vec<u8>,
}

/// Expands a 16-byte seed into `len` pseudorandom bytes.
fn prg_expand(seed: &[u8; 16], len: usize) -> Vec<u8> {
    let mut xof = Shake256::new();
    xof.absorb(b"riposte-prg");
    xof.absorb(seed);
    let mut out = vec![0u8; len];
    xof.squeeze(&mut out);
    out
}

/// A client write request: the pair of DPF shares destined for the two
/// servers.
pub struct WriteRequest {
    /// Share for server A.
    pub share_a: DpfShare,
    /// Share for server B.
    pub share_b: DpfShare,
}

/// Builds a write request placing `message` at cell (`row`, `col`).
pub fn write_request<R: RngCore + CryptoRng>(
    rows: usize,
    cols: usize,
    cell_len: usize,
    row: usize,
    col: usize,
    message: &[u8],
    rng: &mut R,
) -> WriteRequest {
    assert!(row < rows && col < cols);
    assert!(message.len() <= cell_len);
    let mut padded = message.to_vec();
    padded.resize(cell_len, 0);

    // Shares: identical seeds everywhere except the target row, where the
    // seeds differ; the correction row is chosen so the XOR of both servers'
    // expansions equals e_col ⊗ message on that row and zero elsewhere.
    let mut seeds_a = Vec::with_capacity(rows);
    let mut seeds_b = Vec::with_capacity(rows);
    let mut apply_a = vec![false; rows];
    let mut apply_b = vec![false; rows];
    for r in 0..rows {
        let mut seed = [0u8; 16];
        rng.fill_bytes(&mut seed);
        seeds_a.push(seed);
        if r == row {
            let mut other = [0u8; 16];
            rng.fill_bytes(&mut other);
            seeds_b.push(other);
        } else {
            seeds_b.push(seed);
        }
    }
    apply_a[row] = true;
    apply_b[row] = false;

    // Correction = PRG(seed_a[row]) ⊕ PRG(seed_b[row]) ⊕ (e_col ⊗ message).
    let mut correction = prg_expand(&seeds_a[row], cols * cell_len);
    for (byte, other) in correction
        .iter_mut()
        .zip(prg_expand(&seeds_b[row], cols * cell_len))
    {
        *byte ^= other;
    }
    for (offset, byte) in padded.iter().enumerate() {
        correction[col * cell_len + offset] ^= byte;
    }

    let share_a = DpfShare {
        row_seeds: seeds_a,
        apply_correction: apply_a,
        correction_rows: u128::MAX,
        correction: correction.clone(),
    };
    let share_b = DpfShare {
        row_seeds: seeds_b,
        apply_correction: apply_b,
        correction_rows: u128::MAX,
        correction,
    };
    WriteRequest { share_a, share_b }
}

/// Analytical per-server cost of a Riposte round with `messages` messages of
/// `cell_len` bytes, in PRG bytes expanded: `M · M · cell_len` (every write
/// touches the whole table).
pub fn riposte_server_work_bytes(messages: u64, cell_len: u64) -> u64 {
    messages * messages * cell_len
}

/// Estimated wall-clock seconds for a Riposte deployment, calibrated by the
/// measured PRG throughput (bytes/second) of this machine and the paper's
/// three-server, 36-core configuration.
pub fn riposte_latency_seconds(
    messages: u64,
    cell_len: u64,
    prg_bytes_per_second: f64,
    cores: u64,
) -> f64 {
    let work = riposte_server_work_bytes(messages, cell_len) as f64;
    work / (prg_bytes_per_second * cores as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_write_lands_in_the_right_cell() {
        let mut rng = StdRng::seed_from_u64(1);
        let (rows, cols, cell) = (4, 4, 32);
        let mut a = RiposteServer::new(rows, cols, cell);
        let mut b = RiposteServer::new(rows, cols, cell);
        let request = write_request(rows, cols, cell, 2, 3, b"riposte message", &mut rng);
        a.apply(&request.share_a);
        b.apply(&request.share_b);
        let table = a.combine(&b);
        for (index, cell_bytes) in table.iter().enumerate() {
            if index == 2 * cols + 3 {
                assert_eq!(&cell_bytes[..15], b"riposte message");
            } else {
                assert!(cell_bytes.iter().all(|&byte| byte == 0));
            }
        }
    }

    #[test]
    fn many_writes_accumulate_without_collisions() {
        let mut rng = StdRng::seed_from_u64(2);
        let (rows, cols, cell) = (4, 4, 16);
        let mut a = RiposteServer::new(rows, cols, cell);
        let mut b = RiposteServer::new(rows, cols, cell);
        let messages = ["alpha", "bravo", "charlie", "delta"];
        for (i, msg) in messages.iter().enumerate() {
            let request = write_request(rows, cols, cell, i, i, msg.as_bytes(), &mut rng);
            a.apply(&request.share_a);
            b.apply(&request.share_b);
        }
        let table = a.combine(&b);
        for (i, msg) in messages.iter().enumerate() {
            assert_eq!(&table[i * cols + i][..msg.len()], msg.as_bytes());
        }
    }

    #[test]
    fn single_server_table_looks_random() {
        // Neither server alone learns the written message.
        let mut rng = StdRng::seed_from_u64(3);
        let (rows, cols, cell) = (2, 2, 16);
        let mut a = RiposteServer::new(rows, cols, cell);
        let request = write_request(rows, cols, cell, 0, 0, b"secret", &mut rng);
        a.apply(&request.share_a);
        let flat: Vec<u8> = a.table.clone();
        assert!(!flat.windows(6).any(|w| w == b"secret"));
    }

    #[test]
    fn server_work_is_quadratic_in_messages() {
        let w1 = riposte_server_work_bytes(1_000, 160);
        let w2 = riposte_server_work_bytes(2_000, 160);
        assert_eq!(w2, 4 * w1);
        let prg_tracked = {
            let mut rng = StdRng::seed_from_u64(4);
            let mut a = RiposteServer::new(4, 4, 8);
            let request = write_request(4, 4, 8, 1, 1, b"x", &mut rng);
            a.apply(&request.share_a);
            a.prg_bytes_expanded
        };
        assert_eq!(prg_tracked, 4 * 4 * 8);
    }

    #[test]
    fn latency_model_scales_with_cores() {
        let slow = riposte_latency_seconds(1_000_000, 160, 1e9, 36);
        let fast = riposte_latency_seconds(1_000_000, 160, 1e9, 72);
        assert!((slow / fast - 2.0).abs() < 1e-9);
    }
}
