//! # atom-baselines
//!
//! Working, simplified reimplementations of the systems Atom is compared
//! against in Table 12 of the paper, plus the calibrated cost models used by
//! the comparison harness:
//!
//! * [`riposte`] — a two-server DPF-based anonymous microblogging write path
//!   (Riposte, IEEE S&P 2015) whose per-server work is quadratic in the
//!   number of messages.
//! * [`vuvuzela`] — a centralized three-server onion/shuffle dialing pipeline
//!   (Vuvuzela SOSP 2015 / Alpenhorn OSDI 2016) whose per-message cost is a
//!   few hybrid-crypto operations but which only scales vertically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod riposte;
pub mod vuvuzela;

pub use riposte::{riposte_latency_seconds, RiposteServer};
pub use vuvuzela::{vuvuzela_latency_seconds, VuvuzelaChain};
