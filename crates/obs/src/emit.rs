//! Renderers for collected telemetry: Chrome trace-event JSON (one Perfetto
//! process track per fleet process), a per-process counter dump, and a human
//! text summary with p50/p99 per phase per round.
//!
//! The workspace builds offline against a no-op vendored `serde`, so both
//! JSON emitters are hand-rolled — same approach as the bench baselines.
//! Each trace event is written on its own line so downstream tooling
//! (`fig_trace`) can scan line-by-line instead of parsing JSON.

use crate::{Snapshot, SpanRecord, GID_NONE};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escape `text` for embedding in a JSON string literal.
fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            ch if (ch as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", ch as u32);
            }
            ch => out.push(ch),
        }
    }
    out
}

/// Render `snapshots` as Chrome trace-event JSON, loadable in Perfetto or
/// `chrome://tracing`. Every snapshot becomes one process track (`pid` =
/// fleet process index, named via a `process_name` metadata event); spans
/// become complete (`"ph":"X"`) events with `ts`/`dur` in microseconds and
/// `round`/`gid`/`note` in `args`. One event per line.
pub fn chrome_trace_json(snapshots: &[Snapshot]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let mut named: Vec<u32> = Vec::new();
    for snapshot in snapshots {
        if !named.contains(&snapshot.process) {
            named.push(snapshot.process);
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
                 \"args\":{{\"name\":\"atom process {}\"}}}}",
                snapshot.process, snapshot.process
            );
        }
        for span in &snapshot.spans {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let gid = if span.gid == GID_NONE {
                "\"-\"".to_string()
            } else {
                span.gid.to_string()
            };
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"atom\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":{},\"tid\":{},\"args\":{{\"round\":{},\"gid\":{}",
                json_escape(&span.phase),
                span.start_us,
                span.dur_us,
                snapshot.process,
                span.tid,
                span.round,
                gid
            );
            if !span.note.is_empty() {
                let _ = write!(out, ",\"note\":\"{}\"", json_escape(&span.note));
            }
            out.push_str("}}");
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Render each snapshot's counters as JSON: an array of per-process objects,
/// one counter per line, sorted by name within each process.
pub fn metrics_json(snapshots: &[Snapshot]) -> String {
    let mut out = String::from("{\"processes\":[\n");
    for (index, snapshot) in snapshots.iter().enumerate() {
        if index > 0 {
            out.push_str(",\n");
        }
        let _ = write!(out, "{{\"process\":{},\"counters\":{{", snapshot.process);
        for (cindex, (name, value)) in snapshot.counters.iter().enumerate() {
            if cindex > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n  \"{}\": {}", json_escape(name), value);
        }
        out.push_str("\n}}");
    }
    out.push_str("\n]}\n");
    out
}

/// Nearest-rank percentile (`p` in 0..=100) of an unsorted duration sample.
fn percentile_us(durations: &mut [u64], p: u32) -> u64 {
    if durations.is_empty() {
        return 0;
    }
    durations.sort_unstable();
    let rank = (durations.len() * p as usize).div_ceil(100).max(1);
    durations[rank - 1]
}

/// Collect every span duration of `phase` across all snapshots, in
/// microseconds.
fn phase_durations_us(snapshots: &[Snapshot], phase: &str) -> Vec<u64> {
    snapshots
        .iter()
        .flat_map(|snapshot| snapshot.spans.iter())
        .filter(|span| span.phase == phase)
        .map(|span| span.dur_us)
        .collect()
}

/// Median duration of `phase` across all snapshots, in milliseconds
/// (0.0 when the phase never ran). This is what the scale sweep records
/// into `BENCH_scale.json` per-phase columns.
pub fn phase_median_ms(snapshots: &[Snapshot], phase: &str) -> f64 {
    let mut durations = phase_durations_us(snapshots, phase);
    percentile_us(&mut durations, 50) as f64 / 1_000.0
}

/// Human-readable per-round, per-phase latency table: span count, total,
/// p50 and p99 duration for every `(round, phase)` that recorded at least
/// one span, followed by any stall notes.
pub fn text_summary(snapshots: &[Snapshot]) -> String {
    let mut groups: BTreeMap<(u32, String), Vec<u64>> = BTreeMap::new();
    let mut notes: Vec<&SpanRecord> = Vec::new();
    for snapshot in snapshots {
        for span in &snapshot.spans {
            if !span.note.is_empty() {
                notes.push(span);
            }
            groups
                .entry((span.round, span.phase.clone()))
                .or_default()
                .push(span.dur_us);
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>5}  {:<8} {:>6} {:>12} {:>12} {:>12}",
        "round", "phase", "spans", "total_ms", "p50_ms", "p99_ms"
    );
    for ((round, phase), mut durations) in groups {
        let total: u64 = durations.iter().sum();
        let p50 = percentile_us(&mut durations, 50);
        let p99 = percentile_us(&mut durations, 99);
        let _ = writeln!(
            out,
            "{:>5}  {:<8} {:>6} {:>12.3} {:>12.3} {:>12.3}",
            round,
            phase,
            durations.len(),
            total as f64 / 1_000.0,
            p50 as f64 / 1_000.0,
            p99 as f64 / 1_000.0
        );
    }
    for span in notes {
        let _ = writeln!(
            out,
            "note  round {} {}: {}",
            span.round, span.phase, span.note
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(phase: &str, round: u32, gid: u32, start_us: u64, dur_us: u64) -> SpanRecord {
        SpanRecord {
            phase: phase.to_string(),
            round,
            gid,
            tid: 1,
            start_us,
            dur_us,
            note: String::new(),
        }
    }

    fn sample() -> Vec<Snapshot> {
        vec![
            Snapshot {
                process: 0,
                counters: vec![("crypto.multiexp.calls".to_string(), 4)],
                spans: vec![
                    span("mix", 0, 1, 10, 100),
                    span("setup", 0, GID_NONE, 0, 50),
                ],
            },
            Snapshot {
                process: 2,
                counters: vec![("net.frames".to_string(), 7)],
                spans: vec![span("mix", 0, 3, 20, 300)],
            },
        ]
    }

    #[test]
    fn chrome_trace_has_one_track_per_process_and_all_spans() {
        let json = chrome_trace_json(&sample());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        assert_eq!(json.matches("\"process_name\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 3);
        assert!(json.contains("\"pid\":2"));
        assert!(json.contains("\"dur\":300"));
        assert!(json.contains("\"gid\":\"-\""));
    }

    #[test]
    fn chrome_trace_escapes_notes() {
        let mut snapshots = sample();
        snapshots[0].spans[0].note = "peer \"p1\" lost\nretrying".to_string();
        let json = chrome_trace_json(&snapshots);
        assert!(json.contains("\\\"p1\\\" lost\\nretrying"));
    }

    #[test]
    fn metrics_json_lists_each_process() {
        let json = metrics_json(&sample());
        assert!(json.contains("\"process\":0"));
        assert!(json.contains("\"crypto.multiexp.calls\": 4"));
        assert!(json.contains("\"process\":2"));
        assert!(json.contains("\"net.frames\": 7"));
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut durations = vec![400, 100, 200, 300];
        assert_eq!(percentile_us(&mut durations, 50), 200);
        assert_eq!(percentile_us(&mut durations, 99), 400);
        assert_eq!(percentile_us(&mut [], 50), 0);
        assert_eq!(percentile_us(&mut [7], 99), 7);
    }

    #[test]
    fn phase_median_spans_processes() {
        let snapshots = sample();
        assert_eq!(phase_median_ms(&snapshots, "mix"), 0.1);
        assert_eq!(phase_median_ms(&snapshots, "setup"), 0.05);
        assert_eq!(phase_median_ms(&snapshots, "absent"), 0.0);
    }

    #[test]
    fn text_summary_groups_by_round_and_phase() {
        let mut snapshots = sample();
        snapshots[0].spans.push(SpanRecord {
            note: "no task progress for 1s".to_string(),
            ..span("stall", 0, GID_NONE, 500, 0)
        });
        let summary = text_summary(&snapshots);
        assert!(summary.contains("round"));
        assert!(summary.contains("mix"));
        assert!(summary.contains("setup"));
        assert!(summary.contains("note  round 0 stall: no task progress for 1s"));
    }
}
