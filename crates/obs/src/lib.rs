//! Span tracing and operation counters for the Atom reproduction.
//!
//! This crate is the observability floor the rest of the workspace reports
//! through: a process-global, lock-cheap recorder for *phase spans*
//! (setup / intake / verify / mix / exit, keyed by round and group) plus
//! named *operation counters* (crypto batch sizes, transport frame volume),
//! and emitters that render collected snapshots as a Chrome trace-event
//! JSON file (loadable in Perfetto / `chrome://tracing`) or a human text
//! summary with p50/p99 per phase per round.
//!
//! Everything is **disabled by default** and costs one relaxed atomic load
//! per instrumentation site until [`set_enabled`]`(true)` is called, so the
//! hot paths of an untraced run are unperturbed. Recording never touches
//! protocol state or randomness: traced runs must stay byte-identical to
//! untraced ones, and CI asserts exactly that.
//!
//! The crate deliberately depends on nothing but `std`. Spans are coarse
//! (one per phase × round × group × hop), so a plain `Mutex<Vec<_>>` is
//! cheap relative to the work each span brackets; counters are static
//! relaxed atomics registered on first use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod emit;

pub use emit::{chrome_trace_json, metrics_json, phase_median_ms, text_summary};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Sentinel `gid` for spans that are not specific to one group
/// (trustee setup, exit assembly, stall diagnostics).
pub const GID_NONE: u32 = u32::MAX;

/// Global enable flag. All instrumentation sites check this first.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The process index stamped on local snapshots (fleet member index).
static PROCESS: AtomicU32 = AtomicU32::new(0);

/// Monotonic epoch all span timestamps are measured against. Set lazily on
/// the first timestamp so an untraced process never touches the clock.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Next thread id handed out by [`thread_id`].
static NEXT_TID: AtomicU32 = AtomicU32::new(0);

/// Collected spans for this process.
static SPANS: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

/// Registered static counters (see [`Counter`]).
static COUNTERS: Mutex<Vec<&'static Counter>> = Mutex::new(Vec::new());

/// Dynamically-named counters (see [`count`]).
static DYN_COUNTERS: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());

/// Dynamically-named high-water-mark gauges (see [`gauge_max`]). Kept apart
/// from [`DYN_COUNTERS`] because counters merge additively while gauges merge
/// by maximum — peak memory summed across samples would be nonsense.
static DYN_GAUGES: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());

thread_local! {
    /// Small dense per-thread id used as the Perfetto track id. Assigned on
    /// first use so worker threads get stable, compact tids.
    static TID: u32 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// Turn recording on or off process-wide. Disabled (the default) makes every
/// instrumentation site a single relaxed load.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether recording is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Record which fleet process this is (0 = coordinator). Stamped on
/// [`local_snapshot`] and used as the Perfetto `pid` track.
pub fn set_process(process: u32) {
    PROCESS.store(process, Ordering::Relaxed);
}

/// The fleet process index previously set via [`set_process`] (default 0).
pub fn process() -> u32 {
    PROCESS.load(Ordering::Relaxed)
}

/// Microseconds since the process trace epoch.
fn now_us() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// The calling thread's compact trace id.
fn thread_id() -> u32 {
    TID.with(|tid| *tid)
}

/// Clear all recorded spans and reset every counter to zero. Call between
/// independent traced runs sharing one process (e.g. sweep cells) so spans
/// from an earlier run's round N don't bleed into the next run's round N.
pub fn reset() {
    SPANS.lock().expect("span store poisoned").clear();
    for counter in COUNTERS.lock().expect("counter registry poisoned").iter() {
        counter.value.store(0, Ordering::Relaxed);
    }
    DYN_COUNTERS.lock().expect("dyn counters poisoned").clear();
    DYN_GAUGES.lock().expect("dyn gauges poisoned").clear();
}

/// One recorded phase span: `phase` ran for `dur_us` starting at `start_us`
/// (microseconds since the process epoch) on worker thread `tid`, attributed
/// to `round`/`gid` (`gid == `[`GID_NONE`] when not group-specific). `note`
/// carries free-text detail (stall diagnoses) and is usually empty.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Short phase name: `setup`, `intake`, `verify`, `mix`, `exit`, `stall`.
    pub phase: String,
    /// Protocol round the span belongs to.
    pub round: u32,
    /// Group id, or [`GID_NONE`] for round-wide spans.
    pub gid: u32,
    /// Compact worker-thread id (Perfetto track within the process).
    pub tid: u32,
    /// Start time, microseconds since the process trace epoch.
    pub start_us: u64,
    /// Duration in microseconds (0 for instant markers).
    pub dur_us: u64,
    /// Optional free-text detail (e.g. the engine's stall diagnosis).
    pub note: String,
}

/// Live span guard returned by [`span`]; records a [`SpanRecord`] when
/// dropped. Inert (no clock reads, no allocation) while recording is
/// disabled.
#[must_use = "a span measures the scope it is alive for"]
pub struct Span {
    start: Option<(&'static str, u32, u32, u64)>,
}

impl Span {
    /// An inert span that records nothing on drop.
    pub fn disabled() -> Self {
        Span { start: None }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((phase, round, gid, start_us)) = self.start.take() {
            let end_us = now_us();
            record(SpanRecord {
                phase: phase.to_string(),
                round,
                gid,
                tid: thread_id(),
                start_us,
                dur_us: end_us.saturating_sub(start_us),
                note: String::new(),
            });
        }
    }
}

/// Open a phase span; the returned guard records it on drop. Use
/// [`GID_NONE`] for spans not tied to one group.
pub fn span(phase: &'static str, round: u32, gid: u32) -> Span {
    if !enabled() {
        return Span::disabled();
    }
    Span {
        start: Some((phase, round, gid, now_us())),
    }
}

/// Record an instant marker with free-text detail (e.g. a stall diagnosis).
/// No-op while recording is disabled.
pub fn note(phase: &'static str, round: u32, detail: &str) {
    if !enabled() {
        return;
    }
    record(SpanRecord {
        phase: phase.to_string(),
        round,
        gid: GID_NONE,
        tid: thread_id(),
        start_us: now_us(),
        dur_us: 0,
        note: detail.to_string(),
    });
}

fn record(span: SpanRecord) {
    SPANS.lock().expect("span store poisoned").push(span);
}

/// All spans recorded so far for `round`, in recording order.
pub fn spans_for_round(round: u32) -> Vec<SpanRecord> {
    SPANS
        .lock()
        .expect("span store poisoned")
        .iter()
        .filter(|span| span.round == round)
        .cloned()
        .collect()
}

/// A named, statically-allocated operation counter. Declare one per
/// instrumentation site:
///
/// ```
/// static FIXED_BASE_CALLS: atom_obs::Counter =
///     atom_obs::Counter::new("crypto.fixed_base.calls");
/// FIXED_BASE_CALLS.add(1);
/// ```
///
/// `add` is a relaxed fetch-add when recording is enabled and a single
/// relaxed load otherwise. The counter registers itself in the global
/// snapshot registry on its first increment.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// A new counter reported under `name` (dot-separated, e.g.
    /// `crypto.multiexp.terms`).
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Add `n` to the counter. No-op while recording is disabled.
    pub fn add(&'static self, n: u64) {
        if !enabled() {
            return;
        }
        if !self.registered.swap(true, Ordering::Relaxed) {
            COUNTERS
                .lock()
                .expect("counter registry poisoned")
                .push(self);
        }
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The counter's current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Add `n` to a dynamically-named counter (for names only known at runtime,
/// e.g. per-peer transport volume). Hotter sites should prefer a static
/// [`Counter`]. No-op while recording is disabled.
pub fn count(name: &str, n: u64) {
    if !enabled() {
        return;
    }
    let mut map = DYN_COUNTERS.lock().expect("dyn counters poisoned");
    *map.entry(name.to_string()).or_insert(0) += n;
}

/// Raise a dynamically-named high-water-mark gauge to at least `value`.
/// Samples merge by maximum, so the snapshot reports the peak ever observed
/// (e.g. peak in-flight intake submissions), not a running sum. No-op while
/// recording is disabled.
pub fn gauge_max(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    let mut map = DYN_GAUGES.lock().expect("dyn gauges poisoned");
    let slot = map.entry(name.to_string()).or_insert(0);
    *slot = (*slot).max(value);
}

/// The peak value a [`gauge_max`] gauge has reached, or `None` if the gauge
/// was never touched (or recording was disabled at every touch).
pub fn gauge_peak(name: &str) -> Option<u64> {
    DYN_GAUGES
        .lock()
        .expect("dyn gauges poisoned")
        .get(name)
        .copied()
}

/// Current values of every counter touched so far, sorted by name.
/// High-water-mark gauges ride along so snapshots and telemetry frames carry
/// them for free.
pub fn counter_snapshot() -> Vec<(String, u64)> {
    let mut out: Vec<(String, u64)> = COUNTERS
        .lock()
        .expect("counter registry poisoned")
        .iter()
        .map(|counter| (counter.name.to_string(), counter.get()))
        .collect();
    out.extend(
        DYN_COUNTERS
            .lock()
            .expect("dyn counters poisoned")
            .iter()
            .map(|(name, value)| (name.clone(), *value)),
    );
    out.extend(
        DYN_GAUGES
            .lock()
            .expect("dyn gauges poisoned")
            .iter()
            .map(|(name, value)| (name.clone(), *value)),
    );
    out.sort();
    out
}

/// One process's collected telemetry: its counters plus a set of spans.
/// Members ship these to the coordinator inside `telemetry` wire frames;
/// the coordinator merges one per process into each round's report and the
/// fleet trace file (one Perfetto process track per `process`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Fleet process index the data came from (Perfetto `pid`).
    pub process: u32,
    /// Counter values at snapshot time, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Recorded spans (typically filtered to one round).
    pub spans: Vec<SpanRecord>,
}

/// Snapshot this process's counters plus the spans of `round` (or all
/// rounds when `round` is `None`), stamped with [`process`].
pub fn local_snapshot(round: Option<u32>) -> Snapshot {
    let spans = match round {
        Some(round) => spans_for_round(round),
        None => SPANS.lock().expect("span store poisoned").clone(),
    };
    Snapshot {
        process: process(),
        counters: counter_snapshot(),
        spans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The recorder is process-global, so tests that flip `ENABLED` or
    /// inspect stores serialize through this lock.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    #[test]
    fn disabled_spans_and_counters_record_nothing() {
        let _guard = exclusive();
        set_enabled(false);
        reset();
        {
            let _span = span("mix", 7, 3);
        }
        note("stall", 7, "detail");
        static TEST_DISABLED: Counter = Counter::new("test.disabled");
        TEST_DISABLED.add(5);
        count("test.disabled.dyn", 5);
        assert!(spans_for_round(7).is_empty());
        assert_eq!(TEST_DISABLED.get(), 0);
        assert!(counter_snapshot()
            .iter()
            .all(|(name, _)| !name.starts_with("test.disabled")));
    }

    #[test]
    fn enabled_spans_capture_phase_round_gid_and_duration() {
        let _guard = exclusive();
        set_enabled(true);
        reset();
        {
            let _span = span("setup", 2, 1);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        note("stall", 2, "no task progress");
        set_enabled(false);
        let spans = spans_for_round(2);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].phase, "setup");
        assert_eq!((spans[0].round, spans[0].gid), (2, 1));
        assert!(
            spans[0].dur_us >= 1_000,
            "slept 2ms, got {}",
            spans[0].dur_us
        );
        assert_eq!(spans[1].phase, "stall");
        assert_eq!(spans[1].gid, GID_NONE);
        assert_eq!(spans[1].dur_us, 0);
        assert_eq!(spans[1].note, "no task progress");
        assert!(spans_for_round(3).is_empty());
    }

    #[test]
    fn gauges_keep_the_peak_and_reset_clears_them() {
        let _guard = exclusive();
        set_enabled(true);
        reset();
        gauge_max("test.gauge.peak", 4);
        gauge_max("test.gauge.peak", 9);
        gauge_max("test.gauge.peak", 2);
        assert_eq!(gauge_peak("test.gauge.peak"), Some(9));
        assert!(counter_snapshot().contains(&("test.gauge.peak".to_string(), 9)));
        set_enabled(false);
        gauge_max("test.gauge.peak", 100); // disabled: must not record
        assert_eq!(gauge_peak("test.gauge.peak"), Some(9));
        reset();
        assert_eq!(gauge_peak("test.gauge.peak"), None);
    }

    #[test]
    fn counters_snapshot_sorted_and_reset_zeroes() {
        let _guard = exclusive();
        set_enabled(true);
        reset();
        static TEST_B: Counter = Counter::new("test.b");
        static TEST_A: Counter = Counter::new("test.a");
        TEST_B.add(2);
        TEST_A.add(1);
        TEST_A.add(1);
        count("test.dyn.z", 9);
        set_enabled(false);
        let snapshot = counter_snapshot();
        let ours: Vec<_> = snapshot
            .iter()
            .filter(|(name, _)| name.starts_with("test."))
            .cloned()
            .collect();
        assert_eq!(
            ours,
            vec![
                ("test.a".to_string(), 2),
                ("test.b".to_string(), 2),
                ("test.dyn.z".to_string(), 9),
            ]
        );
        reset();
        assert_eq!(TEST_A.get(), 0);
        assert!(counter_snapshot()
            .iter()
            .all(|(name, _)| !name.starts_with("test.dyn")));
    }

    #[test]
    fn local_snapshot_filters_by_round_and_stamps_process() {
        let _guard = exclusive();
        set_enabled(true);
        reset();
        set_process(3);
        {
            let _a = span("mix", 0, 0);
        }
        {
            let _b = span("mix", 1, 0);
        }
        set_enabled(false);
        let snapshot = local_snapshot(Some(1));
        assert_eq!(snapshot.process, 3);
        assert_eq!(snapshot.spans.len(), 1);
        assert_eq!(snapshot.spans[0].round, 1);
        let all = local_snapshot(None);
        assert_eq!(all.spans.len(), 2);
        set_process(0);
    }
}
