//! The acceptance tests of the TCP transport: a scenario executed across
//! **two or three OS processes** on localhost must produce a `RoundOutput`
//! that is byte-identical to the same scenario run in-process over
//! `InMemoryNetwork`. Spawns the `atom-node` binary (coordinator +
//! members), reads the coordinator's canonical output serialization and
//! diffs it against the in-memory run — whole bytes, not summaries. Also
//! the failure-path acceptance: a member SIGKILLed mid-deployment must be
//! *evicted*, the surviving fleet must keep delivering rounds without it,
//! and a restarted member must rejoin and contribute again — no hang, no
//! orphaned processes, no lost messages.

use std::process::{Child, Command, ExitStatus, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use atom_bench::heal;
use atom_bench::netbench::{self, NetSpec, ProcessFleet};
use atom_runtime::{Engine, FaultKind, RoundCompleteHook};

/// The `atom-node` command hosting process `index` of `spec`'s deployment.
fn node_command(spec: &NetSpec, addrs: &[String], index: usize, out: Option<&str>) -> Command {
    let mut command = Command::new(env!("CARGO_BIN_EXE_atom-node"));
    command
        .arg("--index")
        .arg(index.to_string())
        .arg("--addrs")
        .arg(addrs.join(","))
        .arg("--groups")
        .arg(spec.groups.to_string())
        .arg("--rounds")
        .arg(spec.rounds.to_string())
        .arg("--messages")
        .arg(spec.messages.to_string())
        .arg("--iterations")
        .arg(spec.iterations.to_string())
        .arg("--seed")
        .arg(spec.seed.to_string())
        .arg("--stall-timeout-ms")
        .arg(spec.stall_timeout.as_millis().to_string())
        .arg("--workers")
        .arg("2");
    if spec.sharded {
        command.arg("--sharded");
    }
    if let Some(path) = out {
        command.arg("--out").arg(path);
    }
    command
}

fn spawn_node(spec: &NetSpec, addrs: &[String], index: usize, out: Option<&str>) -> Child {
    let mut command = node_command(spec, addrs, index, out);
    command
        .stdout(Stdio::inherit())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn atom-node")
}

/// Waits for `child` with a deadline so a wedged multi-process run fails
/// the test instead of hanging CI forever.
fn wait_with_deadline(mut child: Child, what: &str, deadline: Instant) {
    loop {
        match child.try_wait().expect("wait on atom-node") {
            Some(status) => {
                assert!(status.success(), "{what} exited with {status}");
                return;
            }
            None if Instant::now() > deadline => {
                let _ = child.kill();
                panic!("{what} did not finish before the deadline");
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

#[test]
fn two_process_tcp_run_is_byte_identical_to_in_memory() {
    let spec = NetSpec {
        groups: 4,
        rounds: 2,
        messages: 12,
        iterations: 2,
        seed: 0xEC_0FF,
        delay: Duration::ZERO,
        sharded: false,
        ..NetSpec::default()
    };

    // Reference: the same spec, single process, in-memory transport.
    let in_memory: Vec<_> = Engine::with_workers(3)
        .run_rounds(netbench::build_jobs(&spec))
        .into_iter()
        .collect::<Result<_, _>>()
        .expect("in-memory reference run");
    let want = netbench::serialize_reports(&in_memory);

    let addrs = netbench::free_addrs(2);
    let out = std::env::temp_dir().join(format!("atom_tcp_equivalence_{}.bin", std::process::id()));
    let out_path = out.to_str().unwrap().to_string();

    let member = spawn_node(&spec, &addrs, 1, None);
    let coordinator = spawn_node(&spec, &addrs, 0, Some(&out_path));
    let deadline = Instant::now() + Duration::from_secs(120);
    wait_with_deadline(coordinator, "coordinator", deadline);
    wait_with_deadline(member, "member", deadline);

    let got = std::fs::read(&out_path).expect("coordinator output file");
    let _ = std::fs::remove_file(&out_path);
    assert!(!want.is_empty());
    assert_eq!(
        got, want,
        "TCP two-process output differs from the in-memory run"
    );
}

/// The sharded-directory acceptance test: a 2-OS-process `--sharded` run —
/// where each `atom-node` derives only the DKGs of its hosted groups and
/// the rest of the directory travels as `setup` wire frames — must produce
/// round outputs byte-identical to a single-process in-memory run whose
/// directory was derived monolithically (`netbench::build_derived_jobs`,
/// i.e. `atom_core::directory::derive_setup`).
#[test]
fn two_process_sharded_run_is_byte_identical_to_monolithic_derivation() {
    let spec = NetSpec {
        groups: 4,
        rounds: 2,
        messages: 12,
        iterations: 2,
        seed: 0x5AAD0,
        delay: Duration::ZERO,
        sharded: true,
        ..NetSpec::default()
    };

    // Reference: the same spec, single process, prebuilt monolithic
    // derivation over the identical per-group beacon streams.
    let in_memory: Vec<_> = Engine::with_workers(3)
        .run_rounds(netbench::build_derived_jobs(&spec))
        .into_iter()
        .collect::<Result<_, _>>()
        .expect("in-memory reference run");
    let want = netbench::serialize_reports(&in_memory);

    let addrs = netbench::free_addrs(2);
    let out = std::env::temp_dir().join(format!(
        "atom_sharded_equivalence_{}.bin",
        std::process::id()
    ));
    let out_path = out.to_str().unwrap().to_string();

    let member = spawn_node(&spec, &addrs, 1, None);
    let coordinator = spawn_node(&spec, &addrs, 0, Some(&out_path));
    let deadline = Instant::now() + Duration::from_secs(120);
    wait_with_deadline(coordinator, "coordinator", deadline);
    wait_with_deadline(member, "member", deadline);

    let got = std::fs::read(&out_path).expect("coordinator output file");
    let _ = std::fs::remove_file(&out_path);
    assert!(!want.is_empty());
    assert_eq!(
        got, want,
        "sharded two-process output differs from the monolithic derivation"
    );
}

/// Runs `spec` as a **three-OS-process** deployment — two fleet members
/// plus a coordinator child — and returns the coordinator's canonical
/// output bytes. Members are orchestrated through [`ProcessFleet`], so
/// this also exercises the readiness handshake and teardown path the
/// scaling sweep uses.
fn three_process_output(spec: &NetSpec, tag: &str) -> Vec<u8> {
    let addrs = netbench::free_addrs(3);
    let out = std::env::temp_dir().join(format!("atom_{tag}_{}.bin", std::process::id()));
    let out_path = out.to_str().unwrap().to_string();

    let mut fleet = ProcessFleet::spawn(vec![
        node_command(spec, &addrs, 1, None),
        node_command(spec, &addrs, 2, None),
    ]);
    let coordinator = spawn_node(spec, &addrs, 0, Some(&out_path));
    fleet
        .await_ready(Duration::from_secs(120))
        .expect("fleet readiness");
    let deadline = Instant::now() + Duration::from_secs(120);
    wait_with_deadline(coordinator, "coordinator", deadline);
    fleet
        .finish(Duration::from_secs(120))
        .expect("fleet members");

    let got = std::fs::read(&out_path).expect("coordinator output file");
    let _ = std::fs::remove_file(&out_path);
    got
}

/// The N-process acceptance test: a **three**-OS-process run (coordinator
/// plus two members, groups round-robin over all three) must still be
/// byte-identical to the single-process in-memory run — adding processes
/// must not change a single output byte.
#[test]
fn three_process_tcp_run_is_byte_identical_to_in_memory() {
    let spec = NetSpec {
        groups: 3,
        rounds: 2,
        messages: 9,
        iterations: 2,
        seed: 0x3EC_0FF,
        delay: Duration::ZERO,
        sharded: false,
        ..NetSpec::default()
    };

    let in_memory: Vec<_> = Engine::with_workers(3)
        .run_rounds(netbench::build_jobs(&spec))
        .into_iter()
        .collect::<Result<_, _>>()
        .expect("in-memory reference run");
    let want = netbench::serialize_reports(&in_memory);
    assert!(!want.is_empty());

    let got = three_process_output(&spec, "tcp3_equivalence");
    assert_eq!(
        got, want,
        "TCP three-process output differs from the in-memory run"
    );
}

/// The sharded-directory variant at three processes: each of the three
/// `atom-node`s derives only the DKGs of its own group and the rest of the
/// directory travels as `setup` wire frames — still byte-identical to the
/// monolithic in-memory derivation.
#[test]
fn three_process_sharded_run_is_byte_identical_to_monolithic_derivation() {
    let spec = NetSpec {
        groups: 3,
        rounds: 2,
        messages: 9,
        iterations: 2,
        seed: 0x35AAD0,
        delay: Duration::ZERO,
        sharded: true,
        ..NetSpec::default()
    };

    let in_memory: Vec<_> = Engine::with_workers(3)
        .run_rounds(netbench::build_derived_jobs(&spec))
        .into_iter()
        .collect::<Result<_, _>>()
        .expect("in-memory reference run");
    let want = netbench::serialize_reports(&in_memory);
    assert!(!want.is_empty());

    let got = three_process_output(&spec, "sharded3_equivalence");
    assert_eq!(
        got, want,
        "sharded three-process output differs from the monolithic derivation"
    );
}

/// The `atom-node` command for process `index` of a **self-healing**
/// deployment: the base command plus the churn-facing flags (`--heal`,
/// `--batch`, `--honest`, and the workload's `--delay-ms`, which the
/// non-healing tests leave at zero).
fn heal_node_command(
    spec: &NetSpec,
    addrs: &[String],
    index: usize,
    batch: usize,
    rejoin: bool,
) -> Command {
    let mut command = node_command(spec, addrs, index, None);
    command
        .arg("--delay-ms")
        .arg(spec.delay.as_millis().to_string())
        .arg("--honest")
        .arg(spec.honest.to_string())
        .arg("--heal")
        .arg("--batch")
        .arg(batch.to_string());
    if rejoin {
        command.arg("--rejoin");
    }
    command
}

/// The chaos acceptance test — the failure path upgraded from "fails with
/// errors, not hangs" to "heals": a member of a three-OS-process healing
/// deployment is SIGKILLed mid-run. The coordinator (in-test, so the
/// outcome is directly observable) must diagnose the loss, evict exactly
/// that process, and keep completing rounds with the survivors; a fresh
/// `atom-node --rejoin` started on the killed member's address must be
/// readmitted and host its groups again; every message of every round is
/// delivered; and the final outputs are byte-identical to an in-memory
/// rebuild from the recorded eviction log. Both children — the survivor
/// and the restarted incarnation — exit cleanly.
#[test]
fn killed_member_is_evicted_fleet_heals_and_restart_rejoins() {
    let spec = NetSpec {
        groups: 3,
        rounds: 8,
        messages: 6,
        iterations: 2,
        seed: 0xC4A0_5EED,
        // Slow the groups slightly so the SIGKILL lands while rounds are
        // in flight; keep the stall budget short so detection (and the
        // test) stays fast.
        delay: Duration::from_millis(25),
        sharded: false,
        stall_timeout: Duration::from_secs(2),
        trace: false,
        honest: 2,
        ..NetSpec::default()
    };
    let batch = 1;
    let addrs = netbench::free_addrs(3);

    let fleet = Arc::new(Mutex::new(Some(ProcessFleet::spawn(vec![
        heal_node_command(&spec, &addrs, 1, batch, false),
        heal_node_command(&spec, &addrs, 2, batch, false),
    ]))));
    let killed_status: Arc<Mutex<Option<ExitStatus>>> = Arc::new(Mutex::new(None));

    // Kill process 2 right after it helped complete round 1 (the loss
    // surfaces inside round 2 or its handshake); restart it with
    // `--rejoin` two healed rounds later.
    let hook: RoundCompleteHook = {
        let fleet = fleet.clone();
        let killed_status = killed_status.clone();
        let (spec, addrs) = (spec.clone(), addrs.clone());
        Arc::new(move |round| {
            let mut guard = fleet.lock().unwrap();
            let fleet = guard.as_mut().expect("fleet alive during the run");
            if round == 1 {
                fleet.kill_member(2);
                *killed_status.lock().unwrap() = fleet.member_status(2);
            }
            if round == 3 {
                fleet
                    .restart_member(2, heal_node_command(&spec, &addrs, 2, batch, true))
                    .expect("restart the killed member");
            }
        })
    };

    let outcome = heal::run_recovery_coordinator(&spec, batch, addrs.clone(), 2, Some(hook))
        .expect("recovery completes every round despite the kill");

    // The mid-round SIGKILL was diagnosed and exactly process 2 evicted.
    let convicted: Vec<usize> = outcome.evictions.iter().map(|v| v.process).collect();
    assert_eq!(convicted, vec![2], "exactly the killed process is evicted");
    assert!(matches!(outcome.evictions[0].kind, FaultKind::Dead));
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        let status = killed_status
            .lock()
            .unwrap()
            .expect("kill_member reaps and records the exit status");
        assert_eq!(status.signal(), Some(9), "the member died of SIGKILL");
    }

    // The restart was readmitted while rounds remained, so it hosted its
    // groups again for the tail of the run.
    assert_eq!(
        outcome.rejoins.len(),
        1,
        "restarted member readmitted once: {:?}",
        outcome.rejoins
    );
    let (process, round) = outcome.rejoins[0];
    assert_eq!(process, 2);
    assert!(
        round < spec.rounds,
        "readmitted while rounds remained (round {round})"
    );
    assert!(
        outcome.round_evicted[spec.rounds - 1].is_empty(),
        "the final round ran with full membership again"
    );

    // Churn lost nothing, and the recovery latency was measured.
    let delivered: usize = outcome
        .reports
        .iter()
        .map(|r| r.output.plaintexts.len())
        .sum();
    assert_eq!(delivered, spec.rounds * spec.messages, "no message lost");
    assert!(outcome.detected_at.is_some());
    assert!(outcome.healed_latency.is_some());

    // Byte-determinism given the eviction log: an in-memory rebuild from
    // the recorded per-round membership reproduces the fleet's outputs.
    let reference =
        heal::build_healed_reference(&spec, &outcome.round_evicted, &outcome.round_failed);
    assert_eq!(
        netbench::serialize_reports(&outcome.reports),
        netbench::serialize_reports(&reference),
        "fleet outputs must be rebuildable from the eviction log alone"
    );

    // Both children — survivor and restarted incarnation — exit 0.
    let fleet = fleet
        .lock()
        .unwrap()
        .take()
        .expect("fleet still owned by the test");
    fleet
        .finish(Duration::from_secs(120))
        .expect("fleet members exit cleanly after the healed run");
}
