//! The acceptance test of the TCP transport: a scenario executed across
//! **two OS processes** on localhost must produce a `RoundOutput` that is
//! byte-identical to the same scenario run in-process over
//! `InMemoryNetwork`. Spawns the `atom-node` binary (coordinator + one
//! member), reads the coordinator's canonical output serialization and
//! diffs it against the in-memory run — whole bytes, not summaries.

use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use atom_bench::netbench::{self, NetSpec};
use atom_runtime::Engine;

fn spawn_node(spec: &NetSpec, addrs: &[String], index: usize, out: Option<&str>) -> Child {
    let mut command = Command::new(env!("CARGO_BIN_EXE_atom-node"));
    command
        .arg("--index")
        .arg(index.to_string())
        .arg("--addrs")
        .arg(addrs.join(","))
        .arg("--groups")
        .arg(spec.groups.to_string())
        .arg("--rounds")
        .arg(spec.rounds.to_string())
        .arg("--messages")
        .arg(spec.messages.to_string())
        .arg("--iterations")
        .arg(spec.iterations.to_string())
        .arg("--seed")
        .arg(spec.seed.to_string())
        .arg("--workers")
        .arg("2")
        .stdout(Stdio::inherit())
        .stderr(Stdio::inherit());
    if spec.sharded {
        command.arg("--sharded");
    }
    if let Some(path) = out {
        command.arg("--out").arg(path);
    }
    command.spawn().expect("spawn atom-node")
}

/// Waits for `child` with a deadline so a wedged multi-process run fails
/// the test instead of hanging CI forever.
fn wait_with_deadline(mut child: Child, what: &str, deadline: Instant) {
    loop {
        match child.try_wait().expect("wait on atom-node") {
            Some(status) => {
                assert!(status.success(), "{what} exited with {status}");
                return;
            }
            None if Instant::now() > deadline => {
                let _ = child.kill();
                panic!("{what} did not finish before the deadline");
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

#[test]
fn two_process_tcp_run_is_byte_identical_to_in_memory() {
    let spec = NetSpec {
        groups: 4,
        rounds: 2,
        messages: 12,
        iterations: 2,
        seed: 0xEC_0FF,
        delay: Duration::ZERO,
        sharded: false,
    };

    // Reference: the same spec, single process, in-memory transport.
    let in_memory: Vec<_> = Engine::with_workers(3)
        .run_rounds(netbench::build_jobs(&spec))
        .into_iter()
        .collect::<Result<_, _>>()
        .expect("in-memory reference run");
    let want = netbench::serialize_reports(&in_memory);

    let addrs = netbench::free_addrs(2);
    let out = std::env::temp_dir().join(format!("atom_tcp_equivalence_{}.bin", std::process::id()));
    let out_path = out.to_str().unwrap().to_string();

    let member = spawn_node(&spec, &addrs, 1, None);
    let coordinator = spawn_node(&spec, &addrs, 0, Some(&out_path));
    let deadline = Instant::now() + Duration::from_secs(120);
    wait_with_deadline(coordinator, "coordinator", deadline);
    wait_with_deadline(member, "member", deadline);

    let got = std::fs::read(&out_path).expect("coordinator output file");
    let _ = std::fs::remove_file(&out_path);
    assert!(!want.is_empty());
    assert_eq!(
        got, want,
        "TCP two-process output differs from the in-memory run"
    );
}

/// The sharded-directory acceptance test: a 2-OS-process `--sharded` run —
/// where each `atom-node` derives only the DKGs of its hosted groups and
/// the rest of the directory travels as `setup` wire frames — must produce
/// round outputs byte-identical to a single-process in-memory run whose
/// directory was derived monolithically (`netbench::build_derived_jobs`,
/// i.e. `atom_core::directory::derive_setup`).
#[test]
fn two_process_sharded_run_is_byte_identical_to_monolithic_derivation() {
    let spec = NetSpec {
        groups: 4,
        rounds: 2,
        messages: 12,
        iterations: 2,
        seed: 0x5AAD0,
        delay: Duration::ZERO,
        sharded: true,
    };

    // Reference: the same spec, single process, prebuilt monolithic
    // derivation over the identical per-group beacon streams.
    let in_memory: Vec<_> = Engine::with_workers(3)
        .run_rounds(netbench::build_derived_jobs(&spec))
        .into_iter()
        .collect::<Result<_, _>>()
        .expect("in-memory reference run");
    let want = netbench::serialize_reports(&in_memory);

    let addrs = netbench::free_addrs(2);
    let out = std::env::temp_dir().join(format!(
        "atom_sharded_equivalence_{}.bin",
        std::process::id()
    ));
    let out_path = out.to_str().unwrap().to_string();

    let member = spawn_node(&spec, &addrs, 1, None);
    let coordinator = spawn_node(&spec, &addrs, 0, Some(&out_path));
    let deadline = Instant::now() + Duration::from_secs(120);
    wait_with_deadline(coordinator, "coordinator", deadline);
    wait_with_deadline(member, "member", deadline);

    let got = std::fs::read(&out_path).expect("coordinator output file");
    let _ = std::fs::remove_file(&out_path);
    assert!(!want.is_empty());
    assert_eq!(
        got, want,
        "sharded two-process output differs from the monolithic derivation"
    );
}
