//! The acceptance tests of the TCP transport: a scenario executed across
//! **two or three OS processes** on localhost must produce a `RoundOutput`
//! that is byte-identical to the same scenario run in-process over
//! `InMemoryNetwork`. Spawns the `atom-node` binary (coordinator +
//! members), reads the coordinator's canonical output serialization and
//! diffs it against the in-memory run — whole bytes, not summaries. Also
//! the failure-path acceptance: a member killed mid-deployment must fail
//! the surviving coordinator's rounds with per-round errors — no hang, no
//! orphaned processes.

use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use atom_bench::netbench::{self, NetSpec, ProcessFleet};
use atom_runtime::Engine;

/// The `atom-node` command hosting process `index` of `spec`'s deployment.
fn node_command(spec: &NetSpec, addrs: &[String], index: usize, out: Option<&str>) -> Command {
    let mut command = Command::new(env!("CARGO_BIN_EXE_atom-node"));
    command
        .arg("--index")
        .arg(index.to_string())
        .arg("--addrs")
        .arg(addrs.join(","))
        .arg("--groups")
        .arg(spec.groups.to_string())
        .arg("--rounds")
        .arg(spec.rounds.to_string())
        .arg("--messages")
        .arg(spec.messages.to_string())
        .arg("--iterations")
        .arg(spec.iterations.to_string())
        .arg("--seed")
        .arg(spec.seed.to_string())
        .arg("--stall-timeout-ms")
        .arg(spec.stall_timeout.as_millis().to_string())
        .arg("--workers")
        .arg("2");
    if spec.sharded {
        command.arg("--sharded");
    }
    if let Some(path) = out {
        command.arg("--out").arg(path);
    }
    command
}

fn spawn_node(spec: &NetSpec, addrs: &[String], index: usize, out: Option<&str>) -> Child {
    let mut command = node_command(spec, addrs, index, out);
    command
        .stdout(Stdio::inherit())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn atom-node")
}

/// Waits for `child` with a deadline so a wedged multi-process run fails
/// the test instead of hanging CI forever.
fn wait_with_deadline(mut child: Child, what: &str, deadline: Instant) {
    loop {
        match child.try_wait().expect("wait on atom-node") {
            Some(status) => {
                assert!(status.success(), "{what} exited with {status}");
                return;
            }
            None if Instant::now() > deadline => {
                let _ = child.kill();
                panic!("{what} did not finish before the deadline");
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

#[test]
fn two_process_tcp_run_is_byte_identical_to_in_memory() {
    let spec = NetSpec {
        groups: 4,
        rounds: 2,
        messages: 12,
        iterations: 2,
        seed: 0xEC_0FF,
        delay: Duration::ZERO,
        sharded: false,
        ..NetSpec::default()
    };

    // Reference: the same spec, single process, in-memory transport.
    let in_memory: Vec<_> = Engine::with_workers(3)
        .run_rounds(netbench::build_jobs(&spec))
        .into_iter()
        .collect::<Result<_, _>>()
        .expect("in-memory reference run");
    let want = netbench::serialize_reports(&in_memory);

    let addrs = netbench::free_addrs(2);
    let out = std::env::temp_dir().join(format!("atom_tcp_equivalence_{}.bin", std::process::id()));
    let out_path = out.to_str().unwrap().to_string();

    let member = spawn_node(&spec, &addrs, 1, None);
    let coordinator = spawn_node(&spec, &addrs, 0, Some(&out_path));
    let deadline = Instant::now() + Duration::from_secs(120);
    wait_with_deadline(coordinator, "coordinator", deadline);
    wait_with_deadline(member, "member", deadline);

    let got = std::fs::read(&out_path).expect("coordinator output file");
    let _ = std::fs::remove_file(&out_path);
    assert!(!want.is_empty());
    assert_eq!(
        got, want,
        "TCP two-process output differs from the in-memory run"
    );
}

/// The sharded-directory acceptance test: a 2-OS-process `--sharded` run —
/// where each `atom-node` derives only the DKGs of its hosted groups and
/// the rest of the directory travels as `setup` wire frames — must produce
/// round outputs byte-identical to a single-process in-memory run whose
/// directory was derived monolithically (`netbench::build_derived_jobs`,
/// i.e. `atom_core::directory::derive_setup`).
#[test]
fn two_process_sharded_run_is_byte_identical_to_monolithic_derivation() {
    let spec = NetSpec {
        groups: 4,
        rounds: 2,
        messages: 12,
        iterations: 2,
        seed: 0x5AAD0,
        delay: Duration::ZERO,
        sharded: true,
        ..NetSpec::default()
    };

    // Reference: the same spec, single process, prebuilt monolithic
    // derivation over the identical per-group beacon streams.
    let in_memory: Vec<_> = Engine::with_workers(3)
        .run_rounds(netbench::build_derived_jobs(&spec))
        .into_iter()
        .collect::<Result<_, _>>()
        .expect("in-memory reference run");
    let want = netbench::serialize_reports(&in_memory);

    let addrs = netbench::free_addrs(2);
    let out = std::env::temp_dir().join(format!(
        "atom_sharded_equivalence_{}.bin",
        std::process::id()
    ));
    let out_path = out.to_str().unwrap().to_string();

    let member = spawn_node(&spec, &addrs, 1, None);
    let coordinator = spawn_node(&spec, &addrs, 0, Some(&out_path));
    let deadline = Instant::now() + Duration::from_secs(120);
    wait_with_deadline(coordinator, "coordinator", deadline);
    wait_with_deadline(member, "member", deadline);

    let got = std::fs::read(&out_path).expect("coordinator output file");
    let _ = std::fs::remove_file(&out_path);
    assert!(!want.is_empty());
    assert_eq!(
        got, want,
        "sharded two-process output differs from the monolithic derivation"
    );
}

/// Runs `spec` as a **three-OS-process** deployment — two fleet members
/// plus a coordinator child — and returns the coordinator's canonical
/// output bytes. Members are orchestrated through [`ProcessFleet`], so
/// this also exercises the readiness handshake and teardown path the
/// scaling sweep uses.
fn three_process_output(spec: &NetSpec, tag: &str) -> Vec<u8> {
    let addrs = netbench::free_addrs(3);
    let out = std::env::temp_dir().join(format!("atom_{tag}_{}.bin", std::process::id()));
    let out_path = out.to_str().unwrap().to_string();

    let mut fleet = ProcessFleet::spawn(vec![
        node_command(spec, &addrs, 1, None),
        node_command(spec, &addrs, 2, None),
    ]);
    let coordinator = spawn_node(spec, &addrs, 0, Some(&out_path));
    fleet
        .await_ready(Duration::from_secs(120))
        .expect("fleet readiness");
    let deadline = Instant::now() + Duration::from_secs(120);
    wait_with_deadline(coordinator, "coordinator", deadline);
    fleet
        .finish(Duration::from_secs(120))
        .expect("fleet members");

    let got = std::fs::read(&out_path).expect("coordinator output file");
    let _ = std::fs::remove_file(&out_path);
    got
}

/// The N-process acceptance test: a **three**-OS-process run (coordinator
/// plus two members, groups round-robin over all three) must still be
/// byte-identical to the single-process in-memory run — adding processes
/// must not change a single output byte.
#[test]
fn three_process_tcp_run_is_byte_identical_to_in_memory() {
    let spec = NetSpec {
        groups: 3,
        rounds: 2,
        messages: 9,
        iterations: 2,
        seed: 0x3EC_0FF,
        delay: Duration::ZERO,
        sharded: false,
        ..NetSpec::default()
    };

    let in_memory: Vec<_> = Engine::with_workers(3)
        .run_rounds(netbench::build_jobs(&spec))
        .into_iter()
        .collect::<Result<_, _>>()
        .expect("in-memory reference run");
    let want = netbench::serialize_reports(&in_memory);
    assert!(!want.is_empty());

    let got = three_process_output(&spec, "tcp3_equivalence");
    assert_eq!(
        got, want,
        "TCP three-process output differs from the in-memory run"
    );
}

/// The sharded-directory variant at three processes: each of the three
/// `atom-node`s derives only the DKGs of its own group and the rest of the
/// directory travels as `setup` wire frames — still byte-identical to the
/// monolithic in-memory derivation.
#[test]
fn three_process_sharded_run_is_byte_identical_to_monolithic_derivation() {
    let spec = NetSpec {
        groups: 3,
        rounds: 2,
        messages: 9,
        iterations: 2,
        seed: 0x35AAD0,
        delay: Duration::ZERO,
        sharded: true,
        ..NetSpec::default()
    };

    let in_memory: Vec<_> = Engine::with_workers(3)
        .run_rounds(netbench::build_derived_jobs(&spec))
        .into_iter()
        .collect::<Result<_, _>>()
        .expect("in-memory reference run");
    let want = netbench::serialize_reports(&in_memory);
    assert!(!want.is_empty());

    let got = three_process_output(&spec, "sharded3_equivalence");
    assert_eq!(
        got, want,
        "sharded three-process output differs from the monolithic derivation"
    );
}

/// The failure-path acceptance test: killing a member mid-deployment must
/// fail the coordinator's rounds with **per-round errors** — not a panic,
/// not a hang — and leave no orphaned processes (the fleet reaps every
/// child on all exit paths). The engine surfaces the loss either at a
/// protocol send (reset stream) or through the stall detector, whichever
/// fires first.
#[test]
fn killed_member_fails_rounds_with_errors_not_hangs() {
    let spec = NetSpec {
        groups: 3,
        rounds: 2,
        messages: 6,
        iterations: 3,
        seed: 0xDEAD_BEEF,
        // Slow the groups so the rounds are still in flight when the
        // member dies, and keep the stall budget short so the test stays
        // fast even when no send happens to hit the dead peer.
        delay: Duration::from_millis(100),
        sharded: false,
        stall_timeout: Duration::from_secs(5),
        trace: false,
    };
    let addrs = netbench::free_addrs(3);
    let mut fleet = ProcessFleet::spawn(vec![
        node_command(&spec, &addrs, 1, None),
        node_command(&spec, &addrs, 2, None),
    ]);
    // The coordinator runs in this process so the per-round results are
    // directly observable.
    let process = netbench::Process::start(&spec, addrs, 0, 2);
    fleet
        .await_ready(Duration::from_secs(120))
        .expect("fleet readiness");
    fleet.kill_member(2);

    let started = Instant::now();
    let results = process.try_run();
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "lost member must fail rounds well before a CI-scale timeout"
    );
    assert_eq!(results.len(), spec.rounds, "one result per round");
    for (round, result) in results.iter().enumerate() {
        assert!(
            result.is_err(),
            "round {round} must fail after the member died, got {result:?}"
        );
    }
    // Reap the survivor (it exits non-zero after the abort broadcast —
    // expected) and the killed member; Drop would do the same on panic.
    fleet.kill_all();
}
