//! Membership churn, eviction and round recovery for multi-process fleets.
//!
//! The plain multi-process harness ([`crate::netbench`]) treats a vanished
//! peer as fatal: rounds fail with per-round errors and the sweep ends. This
//! module makes the fleet *heal* instead. The coordinator runs rounds in
//! batches; between batches the fleet passes a two-phase membership
//! handshake, so every process agrees — before any protocol frame of the
//! next batch is sent — on who is dead, which rounds are being retried, and
//! which wire-round namespace (epoch) the batch runs in.
//!
//! ## The recovery loop
//!
//! ```text
//!            ┌────────────────────────────────────────────────────┐
//!            ▼                                                    │
//!   plan ──▶ ack ──▶ drain ──▶ go ──▶ run batch ──▶ ok? ── yes ──▶ advance,
//!   (evictions,      (purge    (commit)             │              readmit
//!    retry round,     stale                         no             rejoiners
//!    epoch, digest)   frames)                       │
//!                                                   ▼
//!                      diagnose lowest failed round → FaultVerdict
//!                      gossip `evict` frame, extend the eviction log,
//!                      re-plan from that round (new epoch)
//! ```
//!
//! **Detection.** A dead process surfaces either as an engine failure
//! (send-failure containment → `TransportLost`, or the stall detector) that
//! [`FaultVerdict::diagnose`] pins on a process, or as a handshake timeout
//! (a member that never acks a plan). Either way the coordinator convicts,
//! gossips the structured verdict to the survivors in a kind-tagged `evict`
//! frame, and re-plans.
//!
//! **Healing.** The retried detection round keeps the membership its
//! directory was built with (frozen in the [`RecoveryLedger`]) and instead
//! marks the evicted servers *failed*, so groups heal by Lagrange
//! reweighting where `k − (h−1)` members remain and by buddy-group escrow
//! reconstruction below that — the paper's §4.5 fault path. Rounds after
//! the detection round re-derive their directories with the evicted servers
//! excluded (the beacon remaps each group onto survivors), which is the
//! re-formation path. Both derivations are pure functions of the spec and
//! the eviction log, so every process computes identical directories and
//! round outputs stay byte-deterministic given the log.
//!
//! **Epoch fencing.** Each batch attempt runs with a disjoint wire-round
//! range (`EngineOptions::round_offset = epoch × EPOCH_STRIDE`). A frame
//! straggling in from a failed attempt therefore cannot alias a retried
//! round — the engine drops it as stale — which makes the retry loop safe
//! even though TCP ordering guarantees nothing across connections.
//!
//! **Rejoin.** A restarted process binds its old address, sends a `rejoin`
//! request carrying its (empty) log digest, and waits. The coordinator
//! collects requests whenever it reads control traffic and readmits at the
//! next *successful* batch boundary: the rejoiner's verdicts are pruned
//! from the log, the node→process map re-includes it, and the next plan —
//! which doubles as the catch-up reply, carrying the authoritative eviction
//! log and current round — puts it back to work hosting groups.

use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use atom_core::config::AtomConfig;
use atom_core::directory::{derive_setup, RoundSetup};
use atom_core::message::TrapSubmission;
use atom_net::{TcpOptions, TcpTransport, Transport};
use atom_runtime::wire::{self, EvictFrame, Frame, RejoinFrame};
use atom_runtime::{
    new_control_sink, ControlSink, Engine, EngineOptions, EngineRole, FaultKind, FaultVerdict,
    RoundCompleteHook, RoundJob, RoundReport, RoundSubmissions, EVICT_LABEL, REJOIN_LABEL,
};

use crate::netbench::{hosted_groups, round_config, round_submissions, NetSpec};

/// Wire-round ids per epoch: batch attempt `e` runs rounds
/// `e × EPOCH_STRIDE ..`, so a straggler frame from attempt `e − 1` can
/// never decode to a round of attempt `e`. A u32 wire round holds 4096
/// epochs of this stride — far beyond the epoch cap of any recovery run.
pub const EPOCH_STRIDE: usize = 1 << 20;

/// How long either side polls between control-frame reads.
const CONTROL_POLL: Duration = Duration::from_millis(2);

/// Bounded retries of one batch when a failure yields no actionable
/// verdict (e.g. a protocol abort that implicates no process).
const MAX_STUCK_RETRIES: usize = 3;

/// The servers hosted by fleet process `process`: server `s` lives on
/// process `s mod processes`, so the partition is a pure function every
/// process computes identically — and the conversion from a dead process
/// to its lost servers needs no directory lookup.
pub fn process_servers(num_servers: usize, processes: usize, process: usize) -> Vec<usize> {
    (0..num_servers)
        .filter(|s| s % processes == process)
        .collect()
}

/// The node→process map with `dead` processes excluded: a group keeps its
/// round-robin owner while that owner lives, and is otherwise reassigned
/// round-robin over the survivors. The orchestrator node (always last)
/// stays on the coordinator, which never appears in `dead`.
pub fn owner_map_excluding(groups: usize, processes: usize, dead: &[usize]) -> Vec<usize> {
    assert!(!dead.contains(&0), "the coordinator cannot be evicted");
    let live: Vec<usize> = (0..processes).filter(|p| !dead.contains(p)).collect();
    assert!(!live.is_empty(), "no live process left");
    let mut owner: Vec<usize> = (0..groups)
        .map(|gid| {
            let preferred = gid % processes;
            if dead.contains(&preferred) {
                live[gid % live.len()]
            } else {
                preferred
            }
        })
        .collect();
    owner.push(0);
    owner
}

/// The exclusive end of the batch containing `round`: batches are aligned
/// to multiples of `batch`, capped at `rounds`. Re-formation and
/// readmission happen only at these boundaries.
pub fn batch_end(round: usize, batch: usize, rounds: usize) -> usize {
    assert!(batch >= 1, "batch must be at least one round");
    (((round / batch) + 1) * batch).min(rounds)
}

/// A 32-byte integrity digest of an eviction log: four independent FNV-64
/// lanes over the canonical `evict`-frame encoding of each verdict, in log
/// order. Good enough to catch divergence between the coordinator's log
/// and a member's mirror (its only job — this is not an adversarial hash).
pub fn eviction_log_digest(log: &[FaultVerdict]) -> [u8; 32] {
    let mut bytes = Vec::new();
    for verdict in log {
        bytes.extend_from_slice(&wire::encode_evict(&EvictFrame {
            verdict: verdict.clone(),
        }));
    }
    let mut digest = [0u8; 32];
    for lane in 0..4u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325 ^ lane.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for &byte in &bytes {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        digest[lane as usize * 8..][..8].copy_from_slice(&hash.to_le_bytes());
    }
    digest
}

/// Both sides' view of who has been evicted and how each round heals.
/// The coordinator mutates it via [`RecoveryLedger::evict`] /
/// [`RecoveryLedger::readmit`]; members mirror it from plans via
/// [`RecoveryLedger::apply_plan`]. Given the same eviction history both
/// paths produce byte-identical round jobs — asserted by unit test.
#[derive(Clone, Debug, Default)]
pub struct RecoveryLedger {
    /// Standing verdicts: one entry per conviction whose process is still
    /// out. This is the log plans and digests cover.
    active: Vec<FaultVerdict>,
    /// round → evicted-server set its directory was built with. Frozen at
    /// first build so a *retried* detection round keeps the membership its
    /// submissions and peers' directories were derived under — it heals by
    /// Lagrange/escrow instead of re-forming.
    frozen: BTreeMap<usize, Vec<usize>>,
    /// round → servers that failed mid-flight for that round (the frozen
    /// detection round's Lagrange/escrow set).
    failed: BTreeMap<usize, Vec<usize>>,
}

impl RecoveryLedger {
    /// The standing eviction log, in conviction order.
    pub fn active(&self) -> &[FaultVerdict] {
        &self.active
    }

    /// The processes currently evicted, ascending.
    pub fn dead_processes(&self) -> Vec<usize> {
        let set: BTreeSet<usize> = self.active.iter().map(|v| v.process).collect();
        set.into_iter().collect()
    }

    /// The servers currently evicted, ascending and deduplicated.
    pub fn active_servers(&self) -> Vec<usize> {
        let set: BTreeSet<usize> = self
            .active
            .iter()
            .flat_map(|v| v.servers.iter().copied())
            .collect();
        set.into_iter().collect()
    }

    /// The digest members must echo in their acks.
    pub fn digest(&self) -> [u8; 32] {
        eviction_log_digest(&self.active)
    }

    /// The evicted-server set round `round`'s directory was (or will be)
    /// built with.
    pub fn evicted_for(&self, round: usize) -> Vec<usize> {
        self.frozen
            .get(&round)
            .cloned()
            .unwrap_or_else(|| self.active_servers())
    }

    /// The mid-flight failure set of round `round`.
    pub fn failed_for(&self, round: usize) -> Vec<usize> {
        self.failed.get(&round).cloned().unwrap_or_default()
    }

    fn note_failures(&mut self, round: usize, fresh: &[usize]) {
        // Only a frozen round (one whose directory already exists with the
        // old membership) heals in place; unfrozen rounds re-form instead.
        if fresh.is_empty() || !self.frozen.contains_key(&round) {
            return;
        }
        let failed = self.failed.entry(round).or_default();
        for &server in fresh {
            if !failed.contains(&server) {
                failed.push(server);
            }
        }
        failed.sort_unstable();
    }

    /// Coordinator side: convict `verdict`, retrying from `retry_round`.
    /// The retried round keeps its frozen membership and gains the newly
    /// lost servers as mid-flight failures; every later round is unfrozen
    /// so its directory re-forms over the survivors.
    pub fn evict(&mut self, verdict: FaultVerdict, retry_round: usize) {
        let known = self.active_servers();
        let fresh: Vec<usize> = verdict
            .servers
            .iter()
            .copied()
            .filter(|s| !known.contains(s))
            .collect();
        self.active.push(verdict);
        self.note_failures(retry_round, &fresh);
        self.frozen.retain(|&round, _| round <= retry_round);
        self.failed.retain(|&round, _| round <= retry_round);
    }

    /// Coordinator side: welcome `process` back. Its standing verdicts are
    /// pruned; rounds planned from now on include it again.
    pub fn readmit(&mut self, process: usize) {
        self.active.retain(|v| v.process != process);
    }

    /// Member side: adopt the coordinator's authoritative plan for a batch
    /// starting at `plan_round`. Mirrors [`RecoveryLedger::evict`] exactly
    /// — new servers relative to our log become mid-flight failures of the
    /// retried round (if we had frozen it), later rounds unfreeze.
    pub fn apply_plan(&mut self, evictions: &[FaultVerdict], plan_round: usize) {
        let known = self.active_servers();
        let mut fresh: Vec<usize> = evictions
            .iter()
            .flat_map(|v| v.servers.iter().copied())
            .filter(|s| !known.contains(s))
            .collect();
        fresh.sort_unstable();
        fresh.dedup();
        self.active = evictions.to_vec();
        self.note_failures(plan_round, &fresh);
        self.frozen.retain(|&round, _| round <= plan_round);
        self.failed.retain(|&round, _| round <= plan_round);
    }

    /// The job for `round` under the current log, freezing the round's
    /// membership on first build. Members pass `with_submissions: false`
    /// under a sharded spec (they never derive non-hosted DKGs); everyone
    /// else derives the full healed directory and the round's submissions.
    /// Errors if the log leaves too few survivors to fill a group.
    pub fn job_for_round(
        &mut self,
        spec: &NetSpec,
        round: usize,
        with_submissions: bool,
    ) -> Result<RoundJob, String> {
        let fallback = self.active_servers();
        let evicted = self.frozen.entry(round).or_insert(fallback).clone();
        let mut config = round_config(spec, round);
        config.evicted_servers = evicted;
        config.validate().map_err(|error| {
            format!("round {round} config invalid under eviction log: {error:?}")
        })?;
        Ok(heal_job(
            spec,
            config,
            round,
            self.failed_for(round),
            with_submissions,
        ))
    }
}

/// Submissions for one healed round, from a stream keyed on `(seed, round)`
/// alone — unlike `build_jobs`' rng, which threads across rounds — so the
/// recovery loop can re-derive any single round in isolation. They encrypt
/// to the entry groups' DKG keys, which derive from the beacon and not from
/// membership, so the same submission bytes stay valid under any eviction.
fn heal_submissions(spec: &NetSpec, round: usize, setup: &RoundSetup) -> Vec<TrapSubmission> {
    let mut rng = StdRng::seed_from_u64(
        spec.seed ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x4845_414C,
    );
    round_submissions(spec, round, setup, &mut rng)
}

fn heal_job(
    spec: &NetSpec,
    config: AtomConfig,
    round: usize,
    failed: Vec<usize>,
    with_submissions: bool,
) -> RoundJob {
    let seed = spec.seed.wrapping_add(round as u64);
    let mut job = if spec.sharded {
        let submissions = if with_submissions {
            let setup = derive_setup(&config).expect("derive healed directory");
            heal_submissions(spec, round, &setup)
        } else {
            Vec::new()
        };
        RoundJob::sharded(config, RoundSubmissions::Trap(submissions), seed)
    } else {
        let setup = derive_setup(&config).expect("derive healed directory");
        let submissions = if with_submissions {
            heal_submissions(spec, round, &setup)
        } else {
            Vec::new()
        };
        RoundJob::new(setup, RoundSubmissions::Trap(submissions), seed)
    };
    job.failed_servers = failed;
    job
}

/// The in-memory reference for a recovered run: every round rebuilt with
/// the membership ([`RecoveryOutcome::round_evicted`]) and mid-flight
/// failure set ([`RecoveryOutcome::round_failed`]) the fleet settled on,
/// run on one in-process engine. `serialize_reports` of this must equal
/// the fleet's — recovery is re-derivation, not improvisation.
pub fn build_healed_reference(
    spec: &NetSpec,
    round_evicted: &[Vec<usize>],
    round_failed: &[Vec<usize>],
) -> Vec<RoundReport> {
    let jobs: Vec<RoundJob> = (0..spec.rounds)
        .map(|round| {
            let mut config = round_config(spec, round);
            config.evicted_servers = round_evicted[round].clone();
            heal_job(spec, config, round, round_failed[round].clone(), true)
        })
        .collect();
    Engine::with_workers(2)
        .run_rounds(jobs)
        .into_iter()
        .collect::<Result<Vec<_>, _>>()
        .expect("healed reference run")
}

/// What a recovered fleet run produced, beyond the round outputs: the full
/// eviction/rejoin history and the latency of the healing path.
pub struct RecoveryOutcome {
    /// One authoritative report per round of the spec.
    pub reports: Vec<RoundReport>,
    /// Every conviction, in order (including convictions of processes that
    /// later rejoined).
    pub evictions: Vec<FaultVerdict>,
    /// `(process, round)` for each readmission: the first round of the
    /// batch the process re-entered at.
    pub rejoins: Vec<(usize, usize)>,
    /// Per round: the evicted-server set its final directory was built
    /// with. Feed to [`build_healed_reference`].
    pub round_evicted: Vec<Vec<usize>>,
    /// Per round: the mid-flight failure set it finally healed around.
    pub round_failed: Vec<Vec<usize>>,
    /// Batch attempts (plan/ack/go handshakes) the run took.
    pub epochs: usize,
    /// When the first fault was detected, relative to run start.
    pub detected_at: Option<Duration>,
    /// Detection → completion of the first round finished after detection:
    /// the paper-facing recovery latency.
    pub healed_latency: Option<Duration>,
    /// Global rounds completed after the first detection, ascending.
    pub healed_rounds: Vec<usize>,
    /// Wall clock of the whole recovered run.
    pub wall: Duration,
}

fn send_control(
    transport: &TcpTransport,
    process: usize,
    orch: usize,
    label: &'static str,
    payload: Vec<u8>,
) -> Result<(), String> {
    // Sends to a vanished peer panic by design (after one reconnect
    // attempt); at a handshake site that panic *is* the detection signal.
    catch_unwind(AssertUnwindSafe(|| {
        transport.send_to_process(process, orch, orch, Cow::Borrowed(label), payload);
    }))
    .map_err(|_| format!("process {process} unreachable"))
}

/// Pulls every control frame available right now: the engine's control
/// sink (frames that arrived mid-run) plus the orchestrator mailbox
/// (frames that arrived between runs). Non-control traffic in the mailbox
/// is dropped — it is by definition stale protocol residue.
fn collect_control(
    transport: &TcpTransport,
    sink: &ControlSink,
    orch: usize,
    inbox: &mut Vec<Frame>,
) {
    inbox.extend(std::mem::take(&mut *sink.lock()));
    for envelope in Transport::drain(transport, orch) {
        if let Ok(frame) = wire::decode(&envelope.payload) {
            if matches!(frame, Frame::Evict(_) | Frame::Rejoin(_)) {
                inbox.push(frame);
            }
        }
    }
}

/// Purges every mailbox of frames from dead epochs. Safe on the
/// coordinator once all acks are in (per-connection ordering puts any
/// member's protocol frames before its ack) and on a member before it
/// acks; the epoch fence backstops whatever arrives later.
fn purge_mailboxes(
    transport: &TcpTransport,
    sink: &ControlSink,
    orch: usize,
    inbox: &mut Vec<Frame>,
) {
    collect_control(transport, sink, orch, inbox);
    for node in 0..Transport::nodes(transport) {
        if node != orch {
            let _ = Transport::drain(transport, node);
        }
    }
}

fn engine_options(
    spec: &NetSpec,
    workers: usize,
    sink: &ControlSink,
    epoch: usize,
    process: usize,
) -> EngineOptions {
    let mut options = EngineOptions::with_workers(workers);
    options.stall_timeout = spec.stall_timeout;
    if !spec.delay.is_zero() {
        options.stragglers = (0..spec.groups).map(|gid| (gid, spec.delay)).collect();
    }
    if process == 0 {
        // The round clock is the coordinator's alone: it owns the diagnosis,
        // and a member that also deadlined would race its abort against the
        // coordinator's verdict (turning `Slow` into `Blamed`).
        options.round_deadline = spec.round_deadline;
    } else if process == 1 && !spec.loris.is_zero() {
        // Chaos knob: member process 1 plays the slow loris, dripping its
        // hosted groups' iterations slowly enough to defeat the stall
        // detector but not the round clock.
        options.stragglers = (0..spec.groups).map(|gid| (gid, spec.loris)).collect();
    }
    options.control_sink = Some(sink.clone());
    options.round_offset = epoch * EPOCH_STRIDE;
    options
}

/// How long the coordinator waits for plan acks before convicting the
/// silent members as dead.
fn ack_deadline(spec: &NetSpec) -> Duration {
    spec.stall_timeout.max(Duration::from_millis(500)) * 2
}

/// How long a member waits for the next plan (or go) before concluding the
/// coordinator itself is gone. Generous: it must outlast a full batch run
/// plus the coordinator's own ack timeout.
fn plan_deadline(spec: &NetSpec) -> Duration {
    spec.stall_timeout.max(Duration::from_secs(1)) * 8 + Duration::from_secs(10)
}

/// Runs the coordinator (process 0) of a self-healing deployment: rounds
/// in batches of `batch`, the eviction → re-formation → rejoin loop from
/// the module docs, until every round of the spec has an authoritative
/// report. `on_round` fires with each global round as it completes — the
/// chaos tests use it to schedule kills and restarts mid-run.
pub fn run_recovery_coordinator(
    spec: &NetSpec,
    batch: usize,
    addrs: Vec<String>,
    workers: usize,
    on_round: Option<RoundCompleteHook>,
) -> Result<RecoveryOutcome, String> {
    let processes = addrs.len();
    assert!(processes >= 2, "a fleet needs at least one member");
    if spec.trace {
        atom_obs::set_process(0);
        atom_obs::set_enabled(true);
    }
    let start = Instant::now();
    let orch = spec.groups;
    let config = round_config(spec, 0);
    let (num_servers, group_size) = (config.num_servers, config.group_size);

    let transport = TcpTransport::bind(
        addrs,
        owner_map_excluding(spec.groups, processes, &[]),
        0,
        TcpOptions::default(),
    )
    .map_err(|error| format!("bind coordinator transport: {error}"))?;
    transport
        .connect_peers()
        .map_err(|error| format!("connect to fleet: {error}"))?;

    let sink = new_control_sink();
    let completions: Arc<Mutex<Vec<(usize, Instant)>>> = Arc::new(Mutex::new(Vec::new()));
    let mut inbox: Vec<Frame> = Vec::new();
    let mut ledger = RecoveryLedger::default();
    let mut live = vec![true; processes];
    let mut pending_rejoin: BTreeSet<usize> = BTreeSet::new();
    let mut reports: Vec<Option<RoundReport>> = (0..spec.rounds).map(|_| None).collect();
    let mut round_evicted = vec![Vec::new(); spec.rounds];
    let mut round_failed = vec![Vec::new(); spec.rounds];
    let mut evictions: Vec<FaultVerdict> = Vec::new();
    let mut rejoins: Vec<(usize, usize)> = Vec::new();
    let mut detected_instant: Option<Instant> = None;
    let mut next = 0usize;
    let mut epoch = 0usize;
    let mut stuck = 0usize;
    let max_epochs = spec.rounds * 3 + 24;

    // Convicts a process: capacity check, gossip the verdict to survivors
    // in an `evict` frame, extend the log, mark dead.
    let convict = |verdict: FaultVerdict,
                   retry_round: usize,
                   transport: &TcpTransport,
                   ledger: &mut RecoveryLedger,
                   live: &mut [bool],
                   evictions: &mut Vec<FaultVerdict>,
                   detected_instant: &mut Option<Instant>|
     -> Result<(), String> {
        let mut lost: BTreeSet<usize> = ledger.active_servers().into_iter().collect();
        lost.extend(verdict.servers.iter().copied());
        if num_servers - lost.len() < group_size {
            return Err(format!(
                "evicting process {} would leave {} servers, fewer than one group ({group_size})",
                verdict.process,
                num_servers - lost.len()
            ));
        }
        detected_instant.get_or_insert_with(Instant::now);
        atom_obs::count("fleet.evictions", 1);
        println!(
            "recovery: evicting process {} ({}) at round {}: {}",
            verdict.process, verdict.kind, retry_round, verdict.reason
        );
        let frame = wire::encode_evict(&EvictFrame {
            verdict: verdict.clone(),
        });
        live[verdict.process] = false;
        for (process, alive) in live.iter().enumerate().skip(1) {
            if *alive {
                let _ = send_control(transport, process, orch, EVICT_LABEL, frame.clone());
            }
        }
        ledger.evict(verdict.clone(), retry_round);
        evictions.push(verdict);
        Ok(())
    };

    let run: Result<(), String> = 'epochs: loop {
        if next >= spec.rounds {
            break Ok(());
        }
        epoch += 1;
        if epoch > max_epochs {
            break Err(format!(
                "recovery made no progress within {max_epochs} epochs"
            ));
        }
        let end = batch_end(next, batch, spec.rounds);

        // Phase 1: the plan — retry round, eviction log, epoch, digest.
        let plan = RejoinFrame {
            round: next,
            process: 0,
            epoch,
            response: true,
            commit: false,
            digest: ledger.digest(),
            evictions: ledger.active().to_vec(),
        };
        atom_obs::count("fleet.handshake.plans", 1);
        let mut awaiting: BTreeSet<usize> = BTreeSet::new();
        for process in 1..processes {
            if !live[process] {
                // A convicted process may be gone — or merely slow and still
                // listening (a slow-loris eviction). Courtesy-copy it the
                // plan over any still-open stream, without awaiting an ack:
                // seeing itself on the dead list is what prompts its rejoin
                // request. Best-effort by design — a crashed peer must not
                // cost a connect-timeout stall per epoch.
                transport.try_send_to_process(
                    process,
                    orch,
                    orch,
                    Cow::Borrowed(REJOIN_LABEL),
                    wire::encode_rejoin(&plan),
                );
                continue;
            }
            match send_control(
                &transport,
                process,
                orch,
                REJOIN_LABEL,
                wire::encode_rejoin(&plan),
            ) {
                Ok(()) => {
                    awaiting.insert(process);
                }
                Err(reason) => {
                    let verdict = FaultVerdict {
                        round: next,
                        process,
                        kind: FaultKind::Dead,
                        servers: process_servers(num_servers, processes, process),
                        reason: format!("unreachable during handshake: {reason}"),
                    };
                    if let Err(error) = convict(
                        verdict,
                        next,
                        &transport,
                        &mut ledger,
                        &mut live,
                        &mut evictions,
                        &mut detected_instant,
                    ) {
                        break 'epochs Err(error);
                    }
                    stuck = 0;
                    continue 'epochs;
                }
            }
        }

        // Collect acks; anything else that shows up is a rejoin request.
        let deadline = Instant::now() + ack_deadline(spec);
        let mut acked: BTreeSet<usize> = BTreeSet::new();
        while acked.len() < awaiting.len() {
            collect_control(&transport, &sink, orch, &mut inbox);
            for frame in inbox.drain(..) {
                let Frame::Rejoin(frame) = frame else {
                    continue;
                };
                if frame.response || frame.commit || frame.process >= processes {
                    continue;
                }
                if awaiting.contains(&frame.process) && frame.epoch == epoch {
                    if frame.digest != plan.digest {
                        break 'epochs Err(format!(
                            "process {} acked with a divergent eviction-log digest",
                            frame.process
                        ));
                    }
                    acked.insert(frame.process);
                } else if !live[frame.process] && pending_rejoin.insert(frame.process) {
                    atom_obs::count("fleet.rejoin.requests", 1);
                    println!(
                        "recovery: process {} requests rejoin (last round {})",
                        frame.process, frame.round
                    );
                }
            }
            if Instant::now() > deadline {
                break;
            }
            std::thread::sleep(CONTROL_POLL);
        }
        let silent: Vec<usize> = awaiting.difference(&acked).copied().collect();
        if !silent.is_empty() {
            for process in silent {
                let verdict = FaultVerdict {
                    round: next,
                    process,
                    kind: FaultKind::Dead,
                    servers: process_servers(num_servers, processes, process),
                    reason: "no handshake ack".into(),
                };
                if let Err(error) = convict(
                    verdict,
                    next,
                    &transport,
                    &mut ledger,
                    &mut live,
                    &mut evictions,
                    &mut detected_instant,
                ) {
                    break 'epochs Err(error);
                }
            }
            stuck = 0;
            continue 'epochs;
        }

        // Barrier: with all acks in, every member frame of dead epochs has
        // been delivered (per-connection ordering) — purge, then commit.
        purge_mailboxes(&transport, &sink, orch, &mut inbox);
        inbox.retain(|frame| matches!(frame, Frame::Rejoin(f) if !f.response && !f.commit));
        for frame in inbox.drain(..) {
            if let Frame::Rejoin(frame) = frame {
                if frame.process < processes
                    && !live[frame.process]
                    && pending_rejoin.insert(frame.process)
                {
                    atom_obs::count("fleet.rejoin.requests", 1);
                }
            }
        }
        // Build (and thereby freeze) the batch's jobs *before* committing:
        // members freeze on receiving the go, so freezing must be part of
        // the committed protocol on this side too — an epoch abandoned
        // before its commit must leave no membership frozen anywhere.
        let dead = ledger.dead_processes();
        let owner = owner_map_excluding(spec.groups, processes, &dead);
        let mut jobs = Vec::new();
        for round in next..end {
            match ledger.job_for_round(spec, round, true) {
                Ok(job) => {
                    round_evicted[round] = ledger.evicted_for(round);
                    round_failed[round] = ledger.failed_for(round);
                    jobs.push(job);
                }
                Err(error) => break 'epochs Err(error),
            }
        }
        let go = RejoinFrame {
            commit: true,
            ..plan.clone()
        };
        // Attempt the commit to *every* member before reacting to failures:
        // members freeze the batch's membership on receiving the go, so all
        // live members must see it — aborting at the first dead peer would
        // leave the survivors frozen on an epoch the coordinator abandoned.
        let mut unreachable: Vec<(usize, String)> = Vec::new();
        for process in awaiting.iter() {
            if let Err(reason) = send_control(
                &transport,
                *process,
                orch,
                REJOIN_LABEL,
                wire::encode_rejoin(&go),
            ) {
                unreachable.push((*process, reason));
            }
        }
        if !unreachable.is_empty() {
            // The epoch committed for everyone reachable (they and we have
            // frozen these rounds); convict the dead and retry the batch
            // with their shares marked failed under the frozen membership.
            for (process, reason) in unreachable {
                let verdict = FaultVerdict {
                    round: next,
                    process,
                    kind: FaultKind::Dead,
                    servers: process_servers(num_servers, processes, process),
                    reason: format!("unreachable at commit: {reason}"),
                };
                if let Err(error) = convict(
                    verdict,
                    next,
                    &transport,
                    &mut ledger,
                    &mut live,
                    &mut evictions,
                    &mut detected_instant,
                ) {
                    break 'epochs Err(error);
                }
            }
            stuck = 0;
            continue 'epochs;
        }

        // Run the batch under the agreed membership and epoch fence.
        for (node, &process) in owner.iter().enumerate() {
            transport.set_owner(node, process);
        }
        let role = EngineRole::coordinator(hosted_groups(&owner, 0));
        let mut options = engine_options(spec, workers, &sink, epoch, 0);
        let base = next;
        let completion_tap = completions.clone();
        let user_hook = on_round.clone();
        options.on_round_complete = Some(Arc::new(move |index: usize| {
            let global = base + index;
            completion_tap
                .lock()
                .unwrap_or_else(|poison| poison.into_inner())
                .push((global, Instant::now()));
            if let Some(hook) = &user_hook {
                hook(global);
            }
        }));
        let results = Engine::new(options).run_rounds_on(jobs, &transport, &role);

        let mut failed: Option<(usize, atom_core::error::AtomError)> = None;
        for (index, result) in results.into_iter().enumerate() {
            let global = next + index;
            match result {
                Ok(report) => reports[global] = Some(report),
                Err(error) => {
                    if failed.as_ref().map(|(r, _)| global < *r).unwrap_or(true) {
                        failed = Some((global, error));
                    }
                }
            }
        }
        let Some((failed_round, error)) = failed else {
            // Batch done: advance, and readmit at this healed boundary.
            stuck = 0;
            next = end;
            if next < spec.rounds {
                for process in std::mem::take(&mut pending_rejoin) {
                    // The restarted peer listens on its old address but our
                    // outbound stream still points at the dead incarnation;
                    // drop it so the readmission plan reconnects fresh.
                    transport.reset_peer(process);
                    ledger.readmit(process);
                    live[process] = true;
                    rejoins.push((process, next));
                    atom_obs::count("fleet.rejoin.readmissions", 1);
                    println!("recovery: process {process} readmitted from round {next}");
                }
            }
            continue 'epochs;
        };

        // Failure: everything below `failed_round` completed; diagnose it
        // and retry from there.
        next = failed_round;
        let verdict = FaultVerdict::diagnose(failed_round, &error, &owner, 0, |process| {
            process_servers(num_servers, processes, process)
        });
        match verdict {
            Some(verdict) if verdict.process != 0 && live[verdict.process] => {
                if let Err(error) = convict(
                    verdict,
                    failed_round,
                    &transport,
                    &mut ledger,
                    &mut live,
                    &mut evictions,
                    &mut detected_instant,
                ) {
                    break 'epochs Err(error);
                }
                stuck = 0;
            }
            _ => {
                stuck += 1;
                if stuck >= MAX_STUCK_RETRIES {
                    break 'epochs Err(format!(
                        "round {failed_round} failed {stuck} times with no actionable verdict: \
                         {error:?}"
                    ));
                }
                println!(
                    "recovery: round {failed_round} failed without a verdict (attempt {stuck}), \
                     retrying: {error:?}"
                );
            }
        }
    };

    // Tell everyone — members, and any rejoiner still waiting — that the
    // run is over (round == spec.rounds is the done sentinel), whether we
    // succeeded or gave up.
    let done = RejoinFrame {
        round: spec.rounds,
        process: 0,
        epoch: epoch + 1,
        response: true,
        commit: false,
        digest: ledger.digest(),
        evictions: ledger.active().to_vec(),
    };
    for process in 1..processes {
        let _ = send_control(
            &transport,
            process,
            orch,
            REJOIN_LABEL,
            wire::encode_rejoin(&done),
        );
    }
    transport.shutdown();
    run?;

    let reports: Vec<RoundReport> = reports
        .into_iter()
        .map(|report| report.expect("every round resolved"))
        .collect();
    let completions = completions
        .lock()
        .unwrap_or_else(|poison| poison.into_inner());
    let detected_at = detected_instant.map(|instant| instant - start);
    let healed_latency = detected_instant.and_then(|detected| {
        completions
            .iter()
            .filter(|(_, at)| *at > detected)
            .map(|(_, at)| *at - detected)
            .min()
    });
    let mut healed_rounds: Vec<usize> = detected_instant
        .map(|detected| {
            completions
                .iter()
                .filter(|(_, at)| *at > detected)
                .map(|(round, _)| *round)
                .collect::<BTreeSet<usize>>()
                .into_iter()
                .collect()
        })
        .unwrap_or_default();
    healed_rounds.dedup();
    Ok(RecoveryOutcome {
        reports,
        evictions,
        rejoins,
        round_evicted,
        round_failed,
        epochs: epoch,
        detected_at,
        healed_latency,
        healed_rounds,
        wall: start.elapsed(),
    })
}

enum GoOrPlan {
    Go,
    Plan(RejoinFrame),
}

fn wait_for_plan(
    transport: &TcpTransport,
    sink: &ControlSink,
    orch: usize,
    after_epoch: usize,
    deadline: Instant,
    inbox: &mut Vec<Frame>,
) -> Result<RejoinFrame, String> {
    loop {
        let mut best: Option<RejoinFrame> = None;
        inbox.retain(|frame| match frame {
            Frame::Evict(_) => {
                atom_obs::count("fleet.evict.gossip_received", 1);
                false
            }
            Frame::Rejoin(frame) if frame.response && !frame.commit => {
                if frame.epoch > after_epoch
                    && best.as_ref().map(|b| frame.epoch > b.epoch).unwrap_or(true)
                {
                    best = Some(frame.clone());
                }
                false
            }
            Frame::Rejoin(_) => false,
            _ => false,
        });
        if let Some(plan) = best {
            return Ok(plan);
        }
        if Instant::now() > deadline {
            return Err("no plan from the coordinator before the deadline".into());
        }
        collect_control(transport, sink, orch, inbox);
        if inbox.is_empty() {
            std::thread::sleep(CONTROL_POLL);
        }
    }
}

fn wait_for_go(
    transport: &TcpTransport,
    sink: &ControlSink,
    orch: usize,
    epoch: usize,
    deadline: Instant,
    inbox: &mut Vec<Frame>,
) -> Result<GoOrPlan, String> {
    loop {
        let mut outcome: Option<GoOrPlan> = None;
        inbox.retain(|frame| match frame {
            Frame::Evict(_) => {
                atom_obs::count("fleet.evict.gossip_received", 1);
                false
            }
            Frame::Rejoin(frame) if frame.response && frame.commit && frame.epoch == epoch => {
                if outcome.is_none() {
                    outcome = Some(GoOrPlan::Go);
                }
                false
            }
            Frame::Rejoin(frame) if frame.response && !frame.commit && frame.epoch > epoch => {
                // The coordinator re-planned underneath us (another member
                // died between our ack and its commit).
                outcome = Some(GoOrPlan::Plan(frame.clone()));
                false
            }
            Frame::Rejoin(_) => false,
            _ => false,
        });
        if let Some(outcome) = outcome {
            return Ok(outcome);
        }
        if Instant::now() > deadline {
            return Err(format!("no commit for epoch {epoch} before the deadline"));
        }
        collect_control(transport, sink, orch, inbox);
        if inbox.is_empty() {
            std::thread::sleep(CONTROL_POLL);
        }
    }
}

/// Runs a member (process `index > 0`) of a self-healing deployment: waits
/// for each plan, mirrors the eviction log, acks, waits for the commit and
/// runs its share of the batch — until the coordinator's done sentinel.
/// With `rejoin: true` the member announces itself as a restarted process
/// (the catch-up handshake): it sends a rejoin request and idles until a
/// plan readmits it. `on_ready` fires once the transport is connected —
/// the node binary prints its readiness line there.
pub fn run_healing_member(
    spec: &NetSpec,
    batch: usize,
    addrs: Vec<String>,
    index: usize,
    workers: usize,
    rejoin: bool,
    on_ready: impl FnOnce(),
) -> Result<(), String> {
    let processes = addrs.len();
    assert!(index > 0 && index < processes, "member index out of range");
    if spec.trace {
        atom_obs::set_process(index as u32);
        atom_obs::set_enabled(true);
    }
    let orch = spec.groups;
    let transport = TcpTransport::bind(
        addrs,
        owner_map_excluding(spec.groups, processes, &[]),
        index,
        TcpOptions::default(),
    )
    .map_err(|error| format!("bind member transport: {error}"))?;
    transport
        .connect_peers()
        .map_err(|error| format!("connect to fleet: {error}"))?;
    on_ready();

    let sink = new_control_sink();
    let mut inbox: Vec<Frame> = Vec::new();
    let mut ledger = RecoveryLedger::default();
    let mut epoch = 0usize;
    let mut requested_rejoin = false;
    if rejoin {
        atom_obs::count("fleet.rejoin.handshakes", 1);
        let request = RejoinFrame {
            round: 0,
            process: index,
            epoch: 0,
            response: false,
            commit: false,
            digest: ledger.digest(),
            evictions: Vec::new(),
        };
        send_control(
            &transport,
            0,
            orch,
            REJOIN_LABEL,
            wire::encode_rejoin(&request),
        )
        .map_err(|reason| format!("rejoin request failed: {reason}"))?;
        requested_rejoin = true;
    }

    let mut carried: Option<RejoinFrame> = None;
    let mut known_dead: Vec<usize> = Vec::new();
    let result: Result<(), String> = loop {
        let plan = match carried.take() {
            Some(plan) => plan,
            None => {
                let deadline = Instant::now() + plan_deadline(spec);
                match wait_for_plan(&transport, &sink, orch, epoch, deadline, &mut inbox) {
                    Ok(plan) => plan,
                    Err(error) => break Err(error),
                }
            }
        };
        if plan.round >= spec.rounds {
            break Ok(());
        }
        epoch = plan.epoch;
        ledger.apply_plan(&plan.evictions, plan.round);
        if ledger.digest() != plan.digest {
            break Err("eviction-log digest diverged from the coordinator".into());
        }
        // A process that left the dead list was readmitted after a restart:
        // our outbound stream still points at its dead incarnation, so drop
        // it before this epoch's mixing frames are lost into it.
        let now_dead = ledger.dead_processes();
        for &process in &known_dead {
            if !now_dead.contains(&process) && process != index {
                transport.reset_peer(process);
            }
        }
        known_dead = now_dead;
        if ledger.dead_processes().contains(&index) {
            // We are on the plan's dead list (evicted while alive, e.g.
            // convicted as slow). Ask back in once and wait for a plan
            // that readmits us.
            if !requested_rejoin {
                atom_obs::count("fleet.rejoin.handshakes", 1);
                let request = RejoinFrame {
                    round: plan.round,
                    process: index,
                    epoch: 0,
                    response: false,
                    commit: false,
                    digest: ledger.digest(),
                    evictions: Vec::new(),
                };
                if let Err(reason) = send_control(
                    &transport,
                    0,
                    orch,
                    REJOIN_LABEL,
                    wire::encode_rejoin(&request),
                ) {
                    break Err(format!("rejoin request failed: {reason}"));
                }
                requested_rejoin = true;
            }
            continue;
        }
        requested_rejoin = false;

        // Mirror the agreed membership.
        let dead = ledger.dead_processes();
        let owner = owner_map_excluding(spec.groups, processes, &dead);
        for (node, &process) in owner.iter().enumerate() {
            transport.set_owner(node, process);
        }
        let hosted = hosted_groups(&owner, index);
        let end = batch_end(plan.round, batch, spec.rounds);

        // Purge dead-epoch residue *before* acking: new-epoch frames can
        // only be sent after the coordinator has our ack.
        purge_mailboxes(&transport, &sink, orch, &mut inbox);
        inbox.clear();
        let ack = RejoinFrame {
            round: plan.round,
            process: index,
            epoch,
            response: false,
            commit: false,
            digest: ledger.digest(),
            evictions: Vec::new(),
        };
        atom_obs::count("fleet.handshake.acks", 1);
        if let Err(reason) =
            send_control(&transport, 0, orch, REJOIN_LABEL, wire::encode_rejoin(&ack))
        {
            break Err(format!("coordinator unreachable at ack: {reason}"));
        }
        let deadline = Instant::now() + plan_deadline(spec);
        match wait_for_go(&transport, &sink, orch, epoch, deadline, &mut inbox) {
            Ok(GoOrPlan::Plan(newer)) => {
                carried = Some(newer);
                continue;
            }
            Ok(GoOrPlan::Go) => {}
            Err(error) => break Err(error),
        }

        // Build (and freeze) the batch only now that the epoch committed:
        // a plan abandoned before its go must leave nothing frozen, or a
        // later retry of the same rounds would heal them under a membership
        // the coordinator never agreed to.
        let mut jobs = Vec::new();
        let mut build_error = None;
        for round in plan.round..end {
            match ledger.job_for_round(spec, round, !spec.sharded) {
                Ok(job) => jobs.push(job),
                Err(error) => {
                    build_error = Some(error);
                    break;
                }
            }
        }
        if let Some(error) = build_error {
            break Err(error);
        }

        let options = engine_options(spec, workers, &sink, epoch, index);
        let role = EngineRole::member(hosted);
        let total = jobs.len();
        let results = Engine::new(options).run_rounds_on(jobs, &transport, &role);
        let resolved = results.iter().filter(|result| result.is_ok()).count();
        // Failures here are expected during churn — the coordinator owns
        // the diagnosis; we just report in and wait for the next plan.
        println!(
            "healing member {index}: epoch {epoch} rounds {}..{end} → {resolved}/{total} resolved",
            plan.round
        );
    };
    transport.shutdown();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netbench::serialize_reports;
    use atom_runtime::RoundDirectory;

    fn verdict(process: usize, servers: Vec<usize>, round: usize) -> FaultVerdict {
        FaultVerdict {
            round,
            process,
            kind: FaultKind::Dead,
            servers,
            reason: "test".into(),
        }
    }

    #[test]
    fn batch_end_aligns_and_caps() {
        assert_eq!(batch_end(0, 2, 7), 2);
        assert_eq!(batch_end(1, 2, 7), 2);
        assert_eq!(batch_end(2, 2, 7), 4);
        assert_eq!(batch_end(6, 2, 7), 7);
        assert_eq!(batch_end(0, 10, 3), 3);
    }

    #[test]
    fn process_servers_partition_the_server_set() {
        let (num_servers, processes) = (11, 3);
        let mut seen = Vec::new();
        for process in 0..processes {
            seen.extend(process_servers(num_servers, processes, process));
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..num_servers).collect::<Vec<_>>());
    }

    #[test]
    fn owner_map_excluding_reassigns_dead_owners_to_survivors() {
        let owner = owner_map_excluding(5, 3, &[1]);
        // gid % 3 == 1 groups move to a survivor; everyone else stays.
        assert_eq!(owner[0], 0);
        assert_ne!(owner[1], 1);
        assert_eq!(owner[2], 2);
        assert_eq!(owner[3], 0);
        assert_ne!(owner[4], 1);
        // Orchestrator pinned to the coordinator.
        assert_eq!(owner[5], 0);
        // No evictions reproduces the historical round-robin map.
        assert_eq!(
            owner_map_excluding(5, 3, &[]),
            crate::netbench::owner_map(5, 3)
        );
    }

    #[test]
    fn eviction_log_digest_tracks_content() {
        let empty = eviction_log_digest(&[]);
        let one = eviction_log_digest(&[verdict(1, vec![1, 4], 0)]);
        let other = eviction_log_digest(&[verdict(2, vec![2, 5], 0)]);
        assert_ne!(empty, one);
        assert_ne!(one, other);
        assert_eq!(one, eviction_log_digest(&[verdict(1, vec![1, 4], 0)]));
    }

    fn job_fingerprint(job: &RoundJob) -> (Vec<usize>, Vec<usize>, Vec<[u8; 32]>) {
        let RoundDirectory::Full(setup) = &job.directory else {
            panic!("prebuilt directory expected");
        };
        (
            setup.config.evicted_servers.clone(),
            job.failed_servers.clone(),
            setup
                .groups
                .iter()
                .map(|group| group.public_key.0.compress().to_bytes())
                .collect(),
        )
    }

    #[test]
    fn member_mirror_matches_coordinator_ledger() {
        let spec = NetSpec {
            groups: 3,
            rounds: 3,
            messages: 6,
            honest: 2,
            ..NetSpec::default()
        };
        let victims = process_servers(9, 3, 2);

        // Coordinator: build round 0, observe the failure, retry round 0
        // and move on to round 1.
        let mut coordinator = RecoveryLedger::default();
        let before = coordinator.job_for_round(&spec, 0, true).unwrap();
        coordinator.evict(verdict(2, victims.clone(), 0), 0);
        let retried = coordinator.job_for_round(&spec, 0, true).unwrap();
        let reformed = coordinator.job_for_round(&spec, 1, true).unwrap();

        // Member: built round 0 too, then mirrors the plan.
        let mut member = RecoveryLedger::default();
        let _ = member.job_for_round(&spec, 0, true).unwrap();
        member.apply_plan(coordinator.active(), 0);
        assert_eq!(member.digest(), coordinator.digest());
        assert_eq!(member.dead_processes(), vec![2]);
        let member_retried = member.job_for_round(&spec, 0, true).unwrap();
        let member_reformed = member.job_for_round(&spec, 1, true).unwrap();

        // The retried detection round keeps its membership (same DKG keys
        // as the pre-failure build) and heals the victims mid-flight; the
        // next round re-forms without them. Coordinator and member agree
        // byte-for-byte on both.
        let original = job_fingerprint(&before);
        let retried = job_fingerprint(&retried);
        assert_eq!(retried.0, original.0);
        assert_eq!(retried.2, original.2);
        assert_eq!(retried.1, victims);
        assert_eq!(retried, job_fingerprint(&member_retried));
        let reformed = job_fingerprint(&reformed);
        assert_eq!(reformed.0, victims);
        assert!(reformed.1.is_empty());
        assert_eq!(reformed, job_fingerprint(&member_reformed));
    }

    #[test]
    fn rejoined_member_rebuilds_identical_fresh_rounds() {
        let spec = NetSpec {
            groups: 3,
            rounds: 4,
            messages: 6,
            honest: 2,
            ..NetSpec::default()
        };
        let mut coordinator = RecoveryLedger::default();
        let _ = coordinator.job_for_round(&spec, 1, true).unwrap();
        coordinator.evict(verdict(2, process_servers(9, 3, 2), 1), 1);
        let _ = coordinator.job_for_round(&spec, 1, true).unwrap();
        let _ = coordinator.job_for_round(&spec, 2, true).unwrap();
        coordinator.readmit(2);
        assert!(coordinator.active().is_empty());
        let fresh = coordinator.job_for_round(&spec, 3, true).unwrap();

        // The restarted process starts from an empty ledger plus the plan.
        let mut rejoiner = RecoveryLedger::default();
        rejoiner.apply_plan(coordinator.active(), 3);
        let mirrored = rejoiner.job_for_round(&spec, 3, true).unwrap();
        assert_eq!(job_fingerprint(&fresh), job_fingerprint(&mirrored));
        assert!(job_fingerprint(&fresh).0.is_empty());
    }

    /// The whole tentpole in one process: a three-"process" fleet (threads
    /// with real TCP transports) loses member 2 between batches, the
    /// coordinator convicts it on the handshake timeout and gossips the
    /// verdict, the survivors re-form its groups and keep delivering, a
    /// restarted member 2 rejoins on the same address mid-run — and the
    /// final outputs are byte-identical to an in-memory rebuild from the
    /// eviction log.
    #[test]
    fn fleet_evicts_dead_member_heals_and_readmits_rejoiner() {
        let spec = NetSpec {
            groups: 3,
            rounds: 6,
            messages: 6,
            iterations: 2,
            seed: 0x4EA1,
            delay: Duration::from_millis(25),
            stall_timeout: Duration::from_secs(1),
            honest: 2,
            ..NetSpec::default()
        };
        let addrs = crate::netbench::free_addrs(3);
        let batch = 1;

        let m1 = {
            let (spec, addrs) = (spec.clone(), addrs.clone());
            std::thread::spawn(move || run_healing_member(&spec, batch, addrs, 1, 2, false, || {}))
        };
        // Process 2's first incarnation believes the workload is one round
        // long: it completes round 0, then exits and shuts its transport
        // down when the round-1 plan arrives — an abrupt disappearance as
        // far as the rest of the fleet is concerned.
        let m2a = {
            let (mut spec, addrs) = (spec.clone(), addrs.clone());
            spec.rounds = 1;
            std::thread::spawn(move || run_healing_member(&spec, batch, addrs, 2, 2, false, || {}))
        };
        // Its second incarnation restarts on the same address once the
        // fleet has demonstrably healed (first post-eviction round done)
        // and asks to rejoin.
        type MemberHandle = std::thread::JoinHandle<Result<(), String>>;
        let restarted: Arc<Mutex<Option<MemberHandle>>> = Arc::new(Mutex::new(None));
        let hook: RoundCompleteHook = {
            let restarted = restarted.clone();
            let (spec, addrs) = (spec.clone(), addrs.clone());
            Arc::new(move |round| {
                if round == 1 {
                    let (spec, addrs) = (spec.clone(), addrs.clone());
                    let handle = std::thread::spawn(move || {
                        run_healing_member(&spec, batch, addrs, 2, 2, true, || {})
                    });
                    restarted
                        .lock()
                        .unwrap_or_else(|poison| poison.into_inner())
                        .replace(handle);
                }
            })
        };

        let outcome = run_recovery_coordinator(&spec, batch, addrs, 2, Some(hook))
            .expect("recovery completes every round");

        assert!(
            m2a.join().unwrap().is_ok(),
            "first incarnation exits cleanly"
        );
        assert!(m1.join().unwrap().is_ok(), "surviving member exits cleanly");
        let m2b = restarted
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .take()
            .expect("restart scheduled at the first healed round");
        assert!(m2b.join().unwrap().is_ok(), "rejoiner exits cleanly");

        // Exactly process 2 was convicted, as dead, and later readmitted.
        let convicted: Vec<usize> = outcome.evictions.iter().map(|v| v.process).collect();
        assert_eq!(convicted, vec![2]);
        assert!(matches!(outcome.evictions[0].kind, FaultKind::Dead));
        assert_eq!(outcome.rejoins.len(), 1);
        let (process, round) = outcome.rejoins[0];
        assert_eq!(process, 2);
        assert!(
            round > 1 && round < spec.rounds,
            "readmitted mid-run, not at the end (round {round})"
        );
        // The rejoined process hosts groups again from that round on.
        assert!(!hosted_groups(&owner_map_excluding(spec.groups, 3, &[]), 2).is_empty());

        // Every round delivered despite the churn, and the healing
        // latency was measured.
        let delivered: usize = outcome
            .reports
            .iter()
            .map(|r| r.output.plaintexts.len())
            .sum();
        assert_eq!(delivered, spec.rounds * spec.messages);
        assert!(outcome.detected_at.is_some());
        assert!(outcome.healed_latency.is_some());
        assert!(!outcome.healed_rounds.is_empty());

        // Byte-determinism given the eviction log: an in-memory rebuild
        // from the recorded per-round membership matches the fleet.
        let reference =
            build_healed_reference(&spec, &outcome.round_evicted, &outcome.round_failed);
        assert_eq!(
            serialize_reports(&outcome.reports),
            serialize_reports(&reference)
        );
        // Round 0 ran with full membership, the rounds after the death
        // re-formed without process 2's servers, and the rounds after
        // readmission include them again.
        assert!(outcome.round_evicted[0].is_empty());
        assert_eq!(outcome.round_evicted[1], process_servers(9, 3, 2));
        assert!(outcome.round_evicted[round].is_empty());
    }

    /// Slow-loris chaos drill: process 1 drips frames slowly enough to keep
    /// the stall detector happy forever, so only the coordinator's round
    /// clock can catch it. The drill asserts the full arc — `Slow`
    /// conviction, the courtesy plan reaching the evicted-but-alive member,
    /// its rejoin and readmission, a fresh conviction after every
    /// readmission — and that the healed rounds are byte-identical to an
    /// in-memory rebuild from the recorded per-round membership.
    #[test]
    fn fleet_convicts_slow_loris_member_and_heals() {
        let loris = Duration::from_secs(5);
        let spec = NetSpec {
            groups: 3,
            rounds: 3,
            messages: 6,
            iterations: 2,
            seed: 0x510E,
            // The drip (one 5 s straggle per iteration) never leaves a 20 s
            // progress gap; the 5 s round clock fires long before the
            // member's ~10 s round could finish.
            stall_timeout: Duration::from_secs(20),
            round_deadline: Duration::from_secs(5),
            loris,
            honest: 2,
            ..NetSpec::default()
        };
        let addrs = crate::netbench::free_addrs(3);
        let batch = 1;

        let m1 = {
            let (spec, addrs) = (spec.clone(), addrs.clone());
            std::thread::spawn(move || run_healing_member(&spec, batch, addrs, 1, 2, false, || {}))
        };
        let m2 = {
            let (spec, addrs) = (spec.clone(), addrs.clone());
            std::thread::spawn(move || run_healing_member(&spec, batch, addrs, 2, 2, false, || {}))
        };
        // Gate: hold the coordinator at the first healed round until the
        // convicted member has certainly woken from its drip sleep and sent
        // its rejoin request (bounded by one residual drip plus slack), so
        // at least one readmission happens before the final batch boundary.
        // WHICH boundary collects the request still races the member's
        // wake-up, so the assertions below are boundary-agnostic.
        let hook: RoundCompleteHook = Arc::new(move |round| {
            if round == 0 {
                std::thread::sleep(loris + Duration::from_secs(2));
            }
        });

        let outcome = run_recovery_coordinator(&spec, batch, addrs, 2, Some(hook))
            .expect("recovery completes every round");
        assert!(
            m1.join().unwrap().is_ok(),
            "loris member exits cleanly on the done sentinel"
        );
        assert!(m2.join().unwrap().is_ok(), "honest member exits cleanly");

        // Convicted as slow (not dead, not blamed) every time it was
        // admitted: once in the original membership, once more after every
        // readmission — the drip always outlives the round clock.
        assert_eq!(
            outcome.evictions.len(),
            outcome.rejoins.len() + 1,
            "one conviction per admission: {:?} vs {:?}",
            outcome.evictions,
            outcome.rejoins
        );
        for verdict in &outcome.evictions {
            assert_eq!(verdict.process, 1);
            assert!(
                matches!(verdict.kind, FaultKind::Slow),
                "expected a Slow verdict: {verdict:?}"
            );
        }
        // The courtesy plan told the evicted-but-alive member about its
        // eviction; it asked back in and was readmitted at a later batch
        // boundary (which one depends on when its wake-up races the epoch
        // purge — any admitted round except the first qualifies).
        assert!(!outcome.rejoins.is_empty(), "never readmitted");
        for &(process, round) in &outcome.rejoins {
            assert_eq!(process, 1);
            assert!((1..spec.rounds).contains(&round), "rejoin at {round}");
        }

        // Liveness floor: every round delivered despite repeated evictions.
        let delivered: usize = outcome
            .reports
            .iter()
            .map(|r| r.output.plaintexts.len())
            .sum();
        assert_eq!(delivered, spec.rounds * spec.messages);
        assert!(outcome.detected_at.is_some());

        // Byte-determinism given the eviction log: an in-memory rebuild
        // from the recorded per-round membership matches the fleet.
        let reference =
            build_healed_reference(&spec, &outcome.round_evicted, &outcome.round_failed);
        assert_eq!(
            serialize_reports(&outcome.reports),
            serialize_reports(&reference)
        );
    }

    #[test]
    fn healed_reference_is_deterministic() {
        let spec = NetSpec {
            groups: 3,
            rounds: 2,
            messages: 6,
            iterations: 2,
            honest: 2,
            ..NetSpec::default()
        };
        let evicted = vec![Vec::new(), process_servers(9, 3, 2)];
        let failed = vec![Vec::new(), Vec::new()];
        let once = serialize_reports(&build_healed_reference(&spec, &evicted, &failed));
        let twice = serialize_reports(&build_healed_reference(&spec, &evicted, &failed));
        assert_eq!(once, twice);
        // And the eviction actually changes the mixed bytes' routing
        // history relative to the intact fleet: same plaintext count,
        // independently derivable either way.
        let intact = build_healed_reference(&spec, &[Vec::new(), Vec::new()], &failed);
        assert_eq!(
            intact
                .iter()
                .map(|r| r.output.plaintexts.len())
                .sum::<usize>(),
            spec.rounds * spec.messages
        );
    }
}
