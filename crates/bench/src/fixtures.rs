//! Shared fixtures for benchmarks and experiment binaries.

use rand::rngs::StdRng;
use rand::SeedableRng;

use atom_core::config::{AtomConfig, Defense, TopologyKind};
use atom_core::directory::{setup_round, GroupContext, RoundSetup};
use atom_core::message::{nizk_payload_len, trap_payload_len, MixPayload};
use atom_crypto::elgamal::{encrypt_message, MessageCiphertext, PublicKey};
use atom_crypto::encoding::encode_message_padded;

/// A deterministic RNG for benchmarks.
pub fn bench_rng() -> StdRng {
    StdRng::seed_from_u64(0xA70B_BE4C)
}

/// A small deployment configuration scaled for a single machine.
pub fn bench_config(defense: Defense, groups: usize, group_size: usize) -> AtomConfig {
    AtomConfig {
        num_servers: groups * group_size,
        num_groups: groups,
        group_size,
        required_honest: 1,
        iterations: 3,
        defense,
        topology: TopologyKind::Square,
        message_len: 32,
        buddy_groups: 1,
        beacon_seed: 7,
        round: 0,
        evicted_servers: Vec::new(),
    }
}

/// Sets up a round for benchmarking.
pub fn bench_setup(config: &AtomConfig) -> RoundSetup {
    setup_round(config, &mut bench_rng()).expect("bench setup")
}

/// The padded payload length for a config.
pub fn payload_len(config: &AtomConfig) -> usize {
    match config.defense {
        Defense::Nizk => nizk_payload_len(config.message_len),
        Defense::Trap => trap_payload_len(config.message_len),
    }
}

/// Encrypts `count` framed payloads of `padded_len` bytes under a group key.
pub fn encrypted_batch(
    group_pk: &PublicKey,
    count: usize,
    padded_len: usize,
    rng: &mut StdRng,
) -> Vec<MessageCiphertext> {
    (0..count)
        .map(|i| {
            let payload = MixPayload::Plaintext(format!("bench message {i}").into_bytes())
                .to_bytes(padded_len)
                .expect("payload fits");
            let points = encode_message_padded(&payload, padded_len).expect("encode");
            encrypt_message(group_pk, &points, rng).0
        })
        .collect()
}

/// Convenience: a single group plus an encrypted batch for it.
pub fn group_with_batch(
    defense: Defense,
    group_size: usize,
    messages: usize,
) -> (RoundSetup, GroupContext, Vec<MessageCiphertext>, usize) {
    let config = bench_config(defense, 2, group_size);
    let padded = payload_len(&config);
    let setup = bench_setup(&config);
    let group = setup.groups[0].clone();
    let batch = encrypted_batch(&group.public_key, messages, padded, &mut bench_rng());
    (setup, group, batch, padded)
}
