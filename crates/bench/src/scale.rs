//! The `BENCH_scale.json` baseline: sustained throughput of the TCP engine
//! as OS processes are added — the paper's headline horizontal-scaling
//! claim, measured end to end on this machine.
//!
//! The throughput bin's `--processes` sweep emits the file
//! ([`ScaleBaseline::to_json`]); the `fig_scale` bin reads it back
//! ([`ScaleBaseline::parse`]) and renders the throughput-vs-processes
//! curve. Emitter and parser live together here so the round-trip is unit
//! tested — the offline build vendors a no-op `serde`, so the JSON is
//! written and scanned by hand.

/// One (processes, workers-per-process) cell of the scaling sweep. Each
/// cell is measured twice — with the prebuilt directory and with
/// `--sharded` distributed setup — so the recorded file carries both
/// curves plus the sharded run's setup latency.
#[derive(Clone, Debug, PartialEq)]
pub struct ScaleCell {
    /// OS processes the deployment was split across (1 = coordinator only).
    pub processes: usize,
    /// Engine worker threads per process.
    pub workers_per_process: usize,
    /// Delivered messages per wall-clock second, prebuilt directory.
    pub msgs_per_sec: f64,
    /// Same, with the sharded directory derived inside the run.
    pub sharded_msgs_per_sec: f64,
    /// Max per-round setup latency of the sharded run, milliseconds.
    pub setup_ms: f64,
    /// Median duration of the `setup` spans of the cell's instrumented
    /// runs, milliseconds; 0.0 when the sweep ran without `--trace`.
    pub setup_p50_ms: f64,
    /// Median `intake` span duration, milliseconds (0.0 untraced).
    pub intake_p50_ms: f64,
    /// Median per-hop `mix` span duration, milliseconds (0.0 untraced).
    pub mix_p50_ms: f64,
    /// Median `verify` span duration, milliseconds (0.0 untraced).
    pub verify_p50_ms: f64,
}

/// The recorded scaling sweep: workload parameters plus one [`ScaleCell`]
/// per (processes, workers) pair.
#[derive(Clone, Debug, PartialEq)]
pub struct ScaleBaseline {
    /// Anytrust groups in the swept deployment.
    pub groups: usize,
    /// Rounds in flight at once.
    pub rounds: usize,
    /// Submissions per round.
    pub messages: usize,
    /// Mixing iterations.
    pub iterations: usize,
    /// Emulated per-iteration group compute, milliseconds.
    pub delay_ms: u64,
    /// The measured cells, in sweep order.
    pub cells: Vec<ScaleCell>,
}

impl ScaleBaseline {
    /// The canonical `BENCH_scale.json` serialization (stable field order,
    /// readable diffs).
    pub fn to_json(&self) -> String {
        let cells: Vec<String> = self
            .cells
            .iter()
            .map(|cell| {
                format!(
                    "    {{\"processes\": {}, \"workers_per_process\": {}, \
                     \"msgs_per_sec\": {:.1}, \"sharded_msgs_per_sec\": {:.1}, \
                     \"setup_ms\": {:.1}, \"setup_p50_ms\": {:.3}, \
                     \"intake_p50_ms\": {:.3}, \"mix_p50_ms\": {:.3}, \
                     \"verify_p50_ms\": {:.3}}}",
                    cell.processes,
                    cell.workers_per_process,
                    cell.msgs_per_sec,
                    cell.sharded_msgs_per_sec,
                    cell.setup_ms,
                    cell.setup_p50_ms,
                    cell.intake_p50_ms,
                    cell.mix_p50_ms,
                    cell.verify_p50_ms
                )
            })
            .collect();
        format!(
            "{{\n  \"groups\": {},\n  \"rounds\": {},\n  \"messages\": {},\n  \
             \"iterations\": {},\n  \"delay_ms\": {},\n  \
             \"transport\": \"tcp-loopback\",\n  \"sweep\": [\n{}\n  ]\n}}\n",
            self.groups,
            self.rounds,
            self.messages,
            self.iterations,
            self.delay_ms,
            cells.join(",\n")
        )
    }

    /// Parses what [`ScaleBaseline::to_json`] wrote. Tolerant of
    /// whitespace, intolerant of missing fields — a truncated or
    /// hand-mangled baseline fails loudly rather than rendering nonsense.
    pub fn parse(json: &str) -> Result<Self, String> {
        let sweep_at = json
            .find("\"sweep\"")
            .ok_or_else(|| "missing field sweep".to_string())?;
        let (head, tail) = json.split_at(sweep_at);
        let array_start = tail
            .find('[')
            .ok_or_else(|| "sweep is not an array".to_string())?;
        let array_end = tail
            .rfind(']')
            .ok_or_else(|| "unterminated sweep array".to_string())?;
        if array_end < array_start {
            return Err("unterminated sweep array".to_string());
        }
        let mut cells = Vec::new();
        for object in tail[array_start + 1..array_end].split('}') {
            let Some(body_at) = object.find('{') else {
                continue; // separators / trailing whitespace between objects
            };
            let body = &object[body_at + 1..];
            cells.push(ScaleCell {
                processes: field_num(body, "processes")? as usize,
                workers_per_process: field_num(body, "workers_per_process")? as usize,
                msgs_per_sec: field_num(body, "msgs_per_sec")?,
                sharded_msgs_per_sec: field_num(body, "sharded_msgs_per_sec")?,
                setup_ms: field_num(body, "setup_ms")?,
                setup_p50_ms: field_num(body, "setup_p50_ms")?,
                intake_p50_ms: field_num(body, "intake_p50_ms")?,
                mix_p50_ms: field_num(body, "mix_p50_ms")?,
                verify_p50_ms: field_num(body, "verify_p50_ms")?,
            });
        }
        if cells.is_empty() {
            return Err("sweep array holds no cells".to_string());
        }
        Ok(Self {
            groups: field_num(head, "groups")? as usize,
            rounds: field_num(head, "rounds")? as usize,
            messages: field_num(head, "messages")? as usize,
            iterations: field_num(head, "iterations")? as usize,
            delay_ms: field_num(head, "delay_ms")? as u64,
            cells,
        })
    }

    /// The swept process counts, ascending and deduplicated.
    pub fn process_counts(&self) -> Vec<usize> {
        let mut counts: Vec<usize> = self.cells.iter().map(|cell| cell.processes).collect();
        counts.sort_unstable();
        counts.dedup();
        counts
    }

    /// The swept workers-per-process values, ascending and deduplicated.
    pub fn worker_counts(&self) -> Vec<usize> {
        let mut counts: Vec<usize> = self
            .cells
            .iter()
            .map(|cell| cell.workers_per_process)
            .collect();
        counts.sort_unstable();
        counts.dedup();
        counts
    }

    /// The cell of one (processes, workers) pair, if it was measured.
    pub fn cell(&self, processes: usize, workers: usize) -> Option<&ScaleCell> {
        self.cells
            .iter()
            .find(|cell| cell.processes == processes && cell.workers_per_process == workers)
    }
}

/// The first number following `"key":` in `text`. Shared with the other
/// hand-rolled baseline parsers (the offline build vendors a no-op serde).
pub(crate) fn field_num(text: &str, key: &str) -> Result<f64, String> {
    let pattern = format!("\"{key}\":");
    let at = text
        .find(&pattern)
        .ok_or_else(|| format!("missing field {key}"))?;
    let rest = text[at + pattern.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end]
        .parse::<f64>()
        .map_err(|error| format!("field {key}: {error}"))
}

/// Renders the throughput-vs-processes curve from a recorded baseline: the
/// full (processes × workers) table, then a bar chart of both curves —
/// prebuilt and sharded directory — at the widest measured worker count.
/// This is the figure the paper's horizontal-scaling claim rests on; on
/// loopback the processes share one machine, so the curve shows engine and
/// transport scaling, not added hardware (that needs `--addrs` pointed at
/// real NICs — see `docs/operations.md`).
pub fn print_fig_scale(baseline: &ScaleBaseline) {
    println!(
        "fig_scale: throughput vs processes — {}-group trap deployment, \
         {} rounds x {} messages, {} iterations, {} ms emulated compute",
        baseline.groups, baseline.rounds, baseline.messages, baseline.iterations, baseline.delay_ms
    );
    println!(
        "{:>10} {:>9} {:>12} {:>14} {:>10}",
        "processes", "workers", "msgs/sec", "sharded msgs/s", "setup"
    );
    for cell in &baseline.cells {
        println!(
            "{:>10} {:>9} {:>12.1} {:>14.1} {:>7.1} ms",
            cell.processes,
            cell.workers_per_process,
            cell.msgs_per_sec,
            cell.sharded_msgs_per_sec,
            cell.setup_ms
        );
    }

    let Some(&workers) = baseline.worker_counts().last() else {
        return;
    };
    let series: Vec<&ScaleCell> = baseline
        .process_counts()
        .into_iter()
        .filter_map(|processes| baseline.cell(processes, workers))
        .collect();
    let peak = series
        .iter()
        .flat_map(|cell| [cell.msgs_per_sec, cell.sharded_msgs_per_sec])
        .fold(0.0f64, f64::max);
    if peak <= 0.0 {
        return;
    }
    const WIDTH: f64 = 50.0;
    println!("\nmsgs/sec vs processes at {workers} workers/process (# prebuilt, + sharded):");
    for cell in series {
        let bar =
            |rate: f64, glyph: &str| glyph.repeat((rate / peak * WIDTH).round().max(0.0) as usize);
        println!(
            "{:>3} | {:<52} {:>8.1}",
            cell.processes,
            bar(cell.msgs_per_sec, "#"),
            cell.msgs_per_sec
        );
        println!(
            "    | {:<52} {:>8.1}  (setup {:.1} ms)",
            bar(cell.sharded_msgs_per_sec, "+"),
            cell.sharded_msgs_per_sec,
            cell.setup_ms
        );
    }

    // Per-phase medians are recorded only when the sweep ran with --trace;
    // an untraced baseline carries zeros and the breakdown is omitted.
    let traced: Vec<&ScaleCell> = baseline
        .cells
        .iter()
        .filter(|cell| {
            cell.setup_p50_ms > 0.0
                || cell.intake_p50_ms > 0.0
                || cell.mix_p50_ms > 0.0
                || cell.verify_p50_ms > 0.0
        })
        .collect();
    if traced.is_empty() {
        return;
    }
    println!("\nper-phase span medians (ms, instrumented runs):");
    println!(
        "{:>10} {:>9} {:>10} {:>10} {:>10} {:>10}",
        "processes", "workers", "setup", "intake", "mix", "verify"
    );
    for cell in traced {
        println!(
            "{:>10} {:>9} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            cell.processes,
            cell.workers_per_process,
            cell.setup_p50_ms,
            cell.intake_p50_ms,
            cell.mix_p50_ms,
            cell.verify_p50_ms
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScaleBaseline {
        ScaleBaseline {
            groups: 8,
            rounds: 2,
            messages: 64,
            iterations: 3,
            delay_ms: 10,
            cells: vec![
                ScaleCell {
                    processes: 1,
                    workers_per_process: 1,
                    msgs_per_sec: 101.5,
                    sharded_msgs_per_sec: 99.2,
                    setup_ms: 14.5,
                    setup_p50_ms: 12.25,
                    intake_p50_ms: 3.5,
                    mix_p50_ms: 1.75,
                    verify_p50_ms: 0.5,
                },
                ScaleCell {
                    processes: 2,
                    workers_per_process: 4,
                    msgs_per_sec: 180.0,
                    sharded_msgs_per_sec: 175.4,
                    setup_ms: 9.1,
                    setup_p50_ms: 0.0,
                    intake_p50_ms: 0.0,
                    mix_p50_ms: 0.0,
                    verify_p50_ms: 0.0,
                },
            ],
        }
    }

    #[test]
    fn json_round_trips() {
        let baseline = sample();
        let parsed = ScaleBaseline::parse(&baseline.to_json()).expect("parse own serialization");
        assert_eq!(parsed, baseline);
    }

    #[test]
    fn parse_rejects_truncated_files() {
        let json = sample().to_json();
        assert!(ScaleBaseline::parse(&json[..json.len() / 2]).is_err());
        assert!(ScaleBaseline::parse("{}").is_err());
        assert!(ScaleBaseline::parse("{\"sweep\": []}").is_err());
    }

    #[test]
    fn axes_are_sorted_and_deduplicated() {
        let baseline = sample();
        assert_eq!(baseline.process_counts(), vec![1, 2]);
        assert_eq!(baseline.worker_counts(), vec![1, 4]);
        assert_eq!(baseline.cell(2, 4).unwrap().msgs_per_sec, 180.0);
        assert!(baseline.cell(3, 1).is_none());
    }
}
