//! Shared pieces of the multi-process (TCP transport) harnesses.
//!
//! A multi-process run has no shared memory, so every process derives the
//! *same* rounds — setups, submissions, seeds — from a [`NetSpec`] it was
//! handed on the command line, and the node→process assignment is a pure
//! function of `(groups, processes)`. This module owns that derivation plus
//! a canonical byte serialization of round outputs, which is what the TCP
//! loopback equivalence test compares against a single-process run —
//! byte-for-byte, not just set-equal.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, ExitStatus, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use atom_core::config::{AtomConfig, Defense};
use atom_core::directory::{derive_setup, setup_round, RoundSetup};
use atom_core::error::AtomResult;
use atom_core::message::{make_trap_submission, TrapSubmission};
use atom_net::{NodeId, TcpOptions, TcpTransport};
use atom_runtime::{Engine, EngineOptions, EngineRole, RoundJob, RoundReport, RoundSubmissions};

/// Everything a process needs to derive a multi-process workload
/// deterministically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetSpec {
    /// Anytrust groups in the deployment.
    pub groups: usize,
    /// Rounds, all in flight at once.
    pub rounds: usize,
    /// Submissions per round.
    pub messages: usize,
    /// Mixing iterations.
    pub iterations: usize,
    /// Deterministic seed for setup, submissions and mixing.
    pub seed: u64,
    /// Per-iteration emulated group compute (zero = real compute only);
    /// stands in for each group's own hardware, as in the throughput bin.
    pub delay: Duration,
    /// Sharded directory mode: each engine process derives only the DKGs of
    /// its hosted groups inside the run (`RoundJob::sharded`) instead of
    /// every process re-deriving the full directory up front. Members skip
    /// submission generation entirely; the coordinator still derives the
    /// full directory *outside* the engine to play the users (submissions
    /// must encrypt to the entry groups' keys), mirroring a real
    /// deployment where clients read the published directory.
    pub sharded: bool,
    /// Engine stall detector (`EngineOptions::stall_timeout`): how long a
    /// process waits with no task progress before failing its unresolved
    /// rounds — the budget for declaring a silent peer dead. Operational,
    /// not part of the workload derivation, but carried here so every
    /// process of a deployment agrees on it like on every other knob.
    pub stall_timeout: Duration,
    /// Enables `atom-obs` span/counter recording in every process of the
    /// deployment. Members then ship telemetry frames to the coordinator at
    /// round end, so it must be on fleet-wide or not at all — which is why
    /// it lives in the spec rather than in a per-process flag. Recording is
    /// observational only: round outputs are byte-identical either way.
    pub trace: bool,
    /// Coordinator round clock (`EngineOptions::round_deadline`; zero =
    /// disabled): the wall-clock budget a round gets before the coordinator
    /// fails it even though progress keeps trickling in. The slow-loris
    /// countermeasure — a peer dripping one frame per stall window resets
    /// the stall detector forever, but cannot stop the round clock. Armed
    /// on the coordinator only: it owns the diagnosis, and a member that
    /// also deadlined would race its `abort` against the coordinator's
    /// verdict and turn a `Slow` conviction into a `Blamed` one.
    pub round_deadline: Duration,
    /// Slow-loris drip (zero = none): member process 1 delays each mixing
    /// iteration of its hosted groups by this, while everyone else runs at
    /// full speed. Combined with `round_deadline` this is the chaos-drill
    /// knob: the drip defeats the stall detector, the round clock catches
    /// it anyway.
    pub loris: Duration,
    /// Honest members assumed per group (`h`): the DKG threshold becomes
    /// `k − (h − 1)`, so `h − 1` member losses per group heal by Lagrange
    /// reweighting alone and only deeper losses need the buddy escrow. The
    /// default (1) keeps the historical all-shares threshold; the recovery
    /// harness runs with 2 so evictions exercise both healing paths.
    pub honest: usize,
}

impl Default for NetSpec {
    fn default() -> Self {
        Self {
            groups: 4,
            rounds: 2,
            messages: 16,
            iterations: 2,
            seed: 0xA70,
            delay: Duration::ZERO,
            sharded: false,
            stall_timeout: Duration::from_secs(120),
            round_deadline: Duration::ZERO,
            loris: Duration::ZERO,
            trace: false,
            honest: 1,
        }
    }
}

/// The deployment configuration of round `round` under `spec`.
pub(crate) fn round_config(spec: &NetSpec, round: usize) -> AtomConfig {
    let mut config = AtomConfig::test_default();
    config.defense = Defense::Trap;
    config.num_groups = spec.groups;
    config.num_servers = (spec.groups * 3).max(config.group_size);
    config.required_honest = spec.honest;
    config.iterations = spec.iterations;
    config.message_len = 32;
    config.round = round as u64;
    config.beacon_seed = spec.seed ^ round as u64;
    config
}

/// The spec's submissions for one round, encrypted to the given directory.
pub(crate) fn round_submissions(
    spec: &NetSpec,
    round: usize,
    setup: &RoundSetup,
    rng: &mut StdRng,
) -> Vec<TrapSubmission> {
    (0..spec.messages)
        .map(|i| {
            let gid = i % spec.groups;
            make_trap_submission(
                gid,
                &setup.groups[gid].public_key,
                &setup.trustees.public_key,
                setup.config.round,
                format!("net r{round} m{i}").as_bytes(),
                setup.config.message_len,
                rng,
            )
            .expect("derive submission")
            .0
        })
        .collect()
}

/// Derives the spec's rounds: a trap-variant deployment with fixed-length
/// messages, identical in every process for equal specs. The directory is
/// prebuilt via the monolithic rng-threaded [`setup_round`] (the historical
/// path; [`build_derived_jobs`] is the per-group-stream equivalent).
pub fn build_jobs(spec: &NetSpec) -> Vec<RoundJob> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    (0..spec.rounds)
        .map(|round| {
            let config = round_config(spec, round);
            let setup = setup_round(&config, &mut rng).expect("derive round setup");
            let submissions = round_submissions(spec, round, &setup, &mut rng);
            RoundJob::new(
                setup,
                RoundSubmissions::Trap(submissions),
                spec.seed.wrapping_add(round as u64),
            )
        })
        .collect()
}

/// The spec's rounds with a **prebuilt** directory derived from the
/// per-group beacon streams ([`derive_setup`]). This is the in-memory
/// reference a sharded run is diffed against: [`build_sharded_jobs`] over
/// the same spec must produce byte-identical round outputs.
pub fn build_derived_jobs(spec: &NetSpec) -> Vec<RoundJob> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    (0..spec.rounds)
        .map(|round| {
            let config = round_config(spec, round);
            let setup = derive_setup(&config).expect("derive round setup");
            let submissions = round_submissions(spec, round, &setup, &mut rng);
            RoundJob::new(
                setup,
                RoundSubmissions::Trap(submissions),
                spec.seed.wrapping_add(round as u64),
            )
        })
        .collect()
}

/// The spec's rounds as **sharded** jobs: the directory is derived inside
/// the engine run, split across the participating processes. Only the
/// coordinator needs submissions (`with_submissions`) — it derives the full
/// directory locally to play the users, exactly like clients reading the
/// published directory — while members pass an empty set and so never
/// derive a non-hosted group's DKG at all.
pub fn build_sharded_jobs(spec: &NetSpec, with_submissions: bool) -> Vec<RoundJob> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    (0..spec.rounds)
        .map(|round| {
            let config = round_config(spec, round);
            let submissions = if with_submissions {
                let setup = derive_setup(&config).expect("derive round setup");
                round_submissions(spec, round, &setup, &mut rng)
            } else {
                Vec::new()
            };
            RoundJob::sharded(
                config,
                RoundSubmissions::Trap(submissions),
                spec.seed.wrapping_add(round as u64),
            )
        })
        .collect()
}

/// The node→process assignment: groups round-robin over every process
/// (coordinator included), the orchestrator node (always last) on process
/// 0. Every process must compute the identical map.
pub fn owner_map(groups: usize, processes: usize) -> Vec<usize> {
    assert!(processes >= 1, "at least the coordinator process");
    let mut owner: Vec<usize> = (0..groups).map(|gid| gid % processes).collect();
    owner.push(0);
    owner
}

/// The group ids process `index` hosts under [`owner_map`].
pub fn hosted_groups(owner: &[NodeId], index: usize) -> Vec<usize> {
    let groups = owner.len() - 1; // last node is the orchestrator
    (0..groups).filter(|&gid| owner[gid] == index).collect()
}

/// Canonical bytes of the deterministic fields of round outputs
/// (`plaintexts`, `per_group`, `routed_ciphertexts`). Two runs of the same
/// spec — whatever the transport, worker count or process layout — must
/// serialize identically; timings and traffic are excluded because wall
/// clocks are not reproducible.
pub fn serialize_reports(reports: &[RoundReport]) -> Vec<u8> {
    let mut out = Vec::new();
    let put_bytes = |out: &mut Vec<u8>, bytes: &[u8]| {
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(bytes);
    };
    out.extend_from_slice(&(reports.len() as u32).to_le_bytes());
    for report in reports {
        let output = &report.output;
        out.extend_from_slice(&(output.routed_ciphertexts as u32).to_le_bytes());
        out.extend_from_slice(&(output.per_group.len() as u32).to_le_bytes());
        for group in &output.per_group {
            out.extend_from_slice(&(group.len() as u32).to_le_bytes());
            for payload in group {
                put_bytes(&mut out, payload);
            }
        }
        out.extend_from_slice(&(output.plaintexts.len() as u32).to_le_bytes());
        for payload in &output.plaintexts {
            put_bytes(&mut out, payload);
        }
    }
    out
}

/// Reserves `count` distinct loopback addresses by briefly binding port-0
/// listeners. Racy in principle — the listeners are dropped before the
/// processes rebind — but the window is milliseconds, a collision fails
/// loudly, and addresses must be known *before* the child processes spawn
/// (the race-free `TcpTransport::bind_any` + `set_peer_addr` dance only
/// works within one process).
pub fn free_addrs(count: usize) -> Vec<String> {
    let listeners: Vec<std::net::TcpListener> = (0..count)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").expect("reserve loopback port"))
        .collect();
    listeners
        .iter()
        .map(|listener| listener.local_addr().expect("resolve port").to_string())
        .collect()
}

/// One process's share of a multi-process run, split into an untimed setup
/// phase ([`Process::start`]: derive jobs, bind, connect) and the run
/// itself ([`Process::run`]) — so benchmarks can time the engine without
/// charging it for workload derivation or connection churn.
///
/// Panics on transport setup failure or if any round errors — the callers
/// are benchmarks and CLI harnesses where loud is right.
pub struct Process {
    transport: TcpTransport,
    role: EngineRole,
    options: EngineOptions,
    jobs: Vec<RoundJob>,
}

impl Process {
    /// Derives the spec's jobs, binds node `index` of `addrs` and connects
    /// to every peer (retrying while they start up). Under
    /// [`NetSpec::sharded`] the jobs carry only the configuration (plus, on
    /// the coordinator, the submissions): the DKGs themselves run inside
    /// [`Process::run`], sharded across the processes.
    pub fn start(spec: &NetSpec, addrs: Vec<String>, index: usize, workers: usize) -> Self {
        if spec.trace {
            atom_obs::set_process(index as u32);
            atom_obs::set_enabled(true);
        }
        let owner = owner_map(spec.groups, addrs.len());
        let hosted = hosted_groups(&owner, index);
        let transport = TcpTransport::bind(addrs, owner, index, TcpOptions::default())
            .expect("bind tcp transport");
        transport.connect_peers().expect("connect tcp peers");
        let role = if index == 0 {
            EngineRole::coordinator(hosted)
        } else {
            EngineRole::member(hosted)
        };
        let mut options = EngineOptions::with_workers(workers);
        options.stall_timeout = spec.stall_timeout;
        if !spec.delay.is_zero() {
            options.stragglers = (0..spec.groups).map(|gid| (gid, spec.delay)).collect();
        }
        let jobs = if spec.sharded {
            build_sharded_jobs(spec, index == 0)
        } else {
            build_jobs(spec)
        };
        Self {
            transport,
            role,
            options,
            jobs,
        }
    }

    /// Plays the role to completion and returns one result per round
    /// (authoritative on process 0, stubs elsewhere). A vanished peer
    /// process surfaces here as per-round errors — via the engine's
    /// send-failure containment and stall detector — never as a hang.
    pub fn try_run(self) -> Vec<AtomResult<RoundReport>> {
        let results =
            Engine::new(self.options).run_rounds_on(self.jobs, &self.transport, &self.role);
        self.transport.shutdown();
        results
    }

    /// [`Process::try_run`], panicking on the first round error — for
    /// harnesses where loud is right.
    pub fn run(self) -> Vec<RoundReport> {
        self.try_run()
            .into_iter()
            .collect::<Result<Vec<_>, _>>()
            .expect("multi-process round failed")
    }
}

/// [`Process::start`] + [`Process::run`] in one call, for harnesses that
/// do their own timing (or none).
pub fn run_process(
    spec: &NetSpec,
    addrs: Vec<String>,
    index: usize,
    workers: usize,
) -> Vec<RoundReport> {
    Process::start(spec, addrs, index, workers).run()
}

/// The readiness line a non-coordinator process of an orchestrated
/// deployment prints on stdout once its setup (job derivation, bind,
/// connect) is done and its engine is about to run. [`ProcessFleet`] waits
/// for it, so a benchmark's timed region starts with every engine ready —
/// and so a child that dies during setup is caught immediately.
pub const READY_LINE: &str = "atom-process-ready";

enum FleetEvent {
    /// The member printed [`READY_LINE`]. Carries the member's spawn
    /// generation so a restarted member's readiness is never confused with
    /// its predecessor's.
    Ready(usize, u64),
    /// The member's stdout hit EOF — it exited (or crashed).
    Eof(usize, u64),
}

struct FleetMember {
    /// Process index in the deployment (the spawning process is 0, so
    /// members are indices `1..processes`).
    index: usize,
    child: Child,
    ready: bool,
    reaped: Option<ExitStatus>,
    reader: Option<std::thread::JoinHandle<()>>,
    /// Bumped by [`ProcessFleet::restart_member`]; events from a previous
    /// child of this slot carry an older generation and are ignored.
    generation: u64,
}

/// Human-readable exit description, including the fatal signal on Unix —
/// a SIGKILLed member reads `signal 9`, not an opaque failure.
#[cfg(unix)]
fn describe_exit(status: &ExitStatus) -> String {
    use std::os::unix::process::ExitStatusExt;
    match (status.code(), status.signal()) {
        (Some(code), _) => format!("exit code {code}"),
        (None, Some(signal)) => {
            let core = if status.core_dumped() {
                " (core dumped)"
            } else {
                ""
            };
            format!("signal {signal}{core}")
        }
        _ => format!("{status}"),
    }
}

#[cfg(not(unix))]
fn describe_exit(status: &ExitStatus) -> String {
    format!("{status}")
}

/// One timestamped, attributed line on stderr when a member is reaped, so
/// a churn post-mortem shows *how* each process died alongside its output.
fn record_exit(index: usize, epoch: Instant, status: &ExitStatus) {
    eprintln!(
        "[p{index} +{}ms] exited ({})",
        epoch.elapsed().as_millis(),
        describe_exit(status)
    );
}

fn spawn_reader(
    index: usize,
    generation: u64,
    stdout: std::process::ChildStdout,
    tx: mpsc::Sender<FleetEvent>,
    epoch: Instant,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let mut lines = BufReader::new(stdout).lines();
        while let Some(Ok(line)) = lines.next() {
            if line == READY_LINE {
                let _ = tx.send(FleetEvent::Ready(index, generation));
            } else {
                let ms = epoch.elapsed().as_millis();
                eprintln!("[p{index} +{ms}ms] {line}");
            }
        }
        let _ = tx.send(FleetEvent::Eof(index, generation));
    })
}

/// The member processes of one N-process deployment: spawned together,
/// readiness-handshaked, monitored, and — on **every** exit path, including
/// a panicking or early-returning caller — killed and reaped (`Drop`), so
/// no fleet ever leaks an orphan child.
///
/// The coordinator (process 0) is the caller itself and never part of the
/// fleet; `commands[i]` must launch process index `i + 1` of the deployment
/// and print [`READY_LINE`] on stdout once its engine is ready.
pub struct ProcessFleet {
    members: Vec<FleetMember>,
    events: mpsc::Receiver<FleetEvent>,
    events_tx: mpsc::Sender<FleetEvent>,
    epoch: Instant,
}

impl ProcessFleet {
    /// Spawns one member per command. Each child's stdout is piped through
    /// a monitor thread that watches for [`READY_LINE`] and forwards every
    /// other line to this process's stderr, prefixed with the member's
    /// process index and the milliseconds elapsed since the fleet spawned —
    /// so an operator watching the coordinator sees the whole fleet's
    /// output, attributed and ordered in time (interleaving across members
    /// is otherwise unreadable during a stall post-mortem).
    pub fn spawn(commands: Vec<Command>) -> Self {
        let (events_tx, events) = mpsc::channel();
        let epoch = Instant::now();
        let members = commands
            .into_iter()
            .enumerate()
            .map(|(i, mut command)| {
                let index = i + 1;
                let mut child = command
                    .stdout(Stdio::piped())
                    .stderr(Stdio::inherit())
                    .spawn()
                    .expect("spawn fleet member process");
                let stdout = child.stdout.take().expect("fleet member stdout piped");
                let reader = spawn_reader(index, 0, stdout, events_tx.clone(), epoch);
                FleetMember {
                    index,
                    child,
                    ready: false,
                    reaped: None,
                    reader: Some(reader),
                    generation: 0,
                }
            })
            .collect();
        Self {
            members,
            events,
            events_tx,
            epoch,
        }
    }

    /// Number of member processes (the deployment has one more: the caller).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the fleet has no members (a single-process deployment).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Blocks until every member signalled readiness. A member that exits
    /// first, or a deadline overrun, kills the whole fleet and reports
    /// which member failed — setup problems surface as errors, not hangs.
    pub fn await_ready(&mut self, timeout: Duration) -> Result<(), String> {
        let deadline = Instant::now() + timeout;
        while self.members.iter().any(|member| !member.ready) {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                let waiting = self.not_ready();
                self.kill_all();
                return Err(format!(
                    "fleet members {waiting:?} not ready after {timeout:?}"
                ));
            }
            match self.events.recv_timeout(left) {
                Ok(FleetEvent::Ready(index, generation)) => {
                    if let Some(member) = self
                        .members
                        .iter_mut()
                        .find(|m| m.index == index && m.generation == generation)
                    {
                        member.ready = true;
                    }
                }
                Ok(FleetEvent::Eof(index, generation)) => {
                    let premature = self
                        .members
                        .iter()
                        .any(|m| m.index == index && m.generation == generation && !m.ready);
                    if premature {
                        self.kill_all();
                        return Err(format!(
                            "fleet member process {index} exited before signalling readiness"
                        ));
                    }
                }
                Err(_) => {
                    let waiting = self.not_ready();
                    self.kill_all();
                    return Err(format!(
                        "fleet members {waiting:?} not ready after {timeout:?}"
                    ));
                }
            }
        }
        Ok(())
    }

    fn not_ready(&self) -> Vec<usize> {
        self.members
            .iter()
            .filter(|member| !member.ready)
            .map(|member| member.index)
            .collect()
    }

    /// Waits (bounded) for every member to exit, then checks the statuses.
    /// A member still running at the deadline is killed; any non-success
    /// status is reported. Either way every child is reaped before this
    /// returns.
    pub fn finish(mut self, timeout: Duration) -> Result<(), String> {
        let deadline = Instant::now() + timeout;
        loop {
            for member in &mut self.members {
                if member.reaped.is_none() {
                    if let Some(status) = member.child.try_wait().expect("wait on fleet member") {
                        record_exit(member.index, self.epoch, &status);
                        member.reaped = Some(status);
                    }
                }
            }
            if self.members.iter().all(|member| member.reaped.is_some()) {
                break;
            }
            if Instant::now() > deadline {
                let laggards: Vec<usize> = self
                    .members
                    .iter()
                    .filter(|member| member.reaped.is_none())
                    .map(|member| member.index)
                    .collect();
                self.kill_all();
                return Err(format!(
                    "fleet members {laggards:?} still running {timeout:?} after the \
                     coordinator finished; killed"
                ));
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        // Children are reaped; this only joins the monitor threads.
        self.kill_all();
        let failures: Vec<String> = self
            .members
            .iter()
            .filter_map(|member| match member.reaped {
                Some(status) if !status.success() => Some(format!(
                    "fleet member process {} exited with {}",
                    member.index,
                    describe_exit(&status)
                )),
                _ => None,
            })
            .collect();
        if failures.is_empty() {
            Ok(())
        } else {
            Err(failures.join("; "))
        }
    }

    /// Kills one member by its deployment process index (fault injection:
    /// the chaos tests kill a member mid-round and assert the coordinator
    /// evicts it and the surviving fleet heals).
    pub fn kill_member(&mut self, index: usize) {
        let epoch = self.epoch;
        if let Some(member) = self.members.iter_mut().find(|m| m.index == index) {
            if member.reaped.is_none() {
                let _ = member.child.kill();
                if let Ok(status) = member.child.wait() {
                    record_exit(index, epoch, &status);
                    member.reaped = Some(status);
                }
            }
        }
    }

    /// The exit status of member `index`, if it has been reaped — on Unix
    /// the status carries the fatal signal, so a chaos test can assert the
    /// member died of SIGKILL rather than of its own accord.
    pub fn member_status(&self, index: usize) -> Option<ExitStatus> {
        self.members
            .iter()
            .find(|m| m.index == index)
            .and_then(|m| m.reaped)
    }

    /// Restarts a dead member slot with a fresh command (same deployment
    /// index — rejoin drills restart the killed process on its old
    /// address). Errors if the old child is still running. The new child
    /// gets a fresh generation, so stale events from its predecessor are
    /// ignored; wait for it with [`ProcessFleet::await_ready`].
    pub fn restart_member(&mut self, index: usize, mut command: Command) -> Result<(), String> {
        let epoch = self.epoch;
        let tx = self.events_tx.clone();
        let member = self
            .members
            .iter_mut()
            .find(|m| m.index == index)
            .ok_or_else(|| format!("no fleet member with process index {index}"))?;
        if member.reaped.is_none() {
            match member.child.try_wait() {
                Ok(Some(status)) => {
                    record_exit(index, epoch, &status);
                    member.reaped = Some(status);
                }
                Ok(None) => return Err(format!("fleet member {index} is still running")),
                Err(error) => return Err(format!("wait on fleet member {index}: {error}")),
            }
        }
        if let Some(reader) = member.reader.take() {
            let _ = reader.join();
        }
        let mut child = command
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|error| format!("respawn fleet member {index}: {error}"))?;
        let stdout = child.stdout.take().expect("fleet member stdout piped");
        member.generation += 1;
        member.reader = Some(spawn_reader(index, member.generation, stdout, tx, epoch));
        member.child = child;
        member.ready = false;
        member.reaped = None;
        eprintln!("[p{index} +{}ms] restarted", epoch.elapsed().as_millis());
        Ok(())
    }

    /// Kills and reaps every still-running member and joins the monitor
    /// threads. Idempotent; also what `Drop` runs, so no exit path —
    /// including a caller panic — orphans a child process.
    pub fn kill_all(&mut self) {
        for member in &mut self.members {
            if member.reaped.is_none() {
                let _ = member.child.kill();
                if let Ok(status) = member.child.wait() {
                    member.reaped = Some(status);
                }
            }
            if let Some(reader) = member.reader.take() {
                let _ = reader.join();
            }
        }
    }
}

impl Drop for ProcessFleet {
    fn drop(&mut self) {
        self.kill_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_map_round_robins_groups_and_pins_the_orchestrator() {
        assert_eq!(owner_map(4, 2), vec![0, 1, 0, 1, 0]);
        assert_eq!(owner_map(3, 1), vec![0, 0, 0, 0]);
        assert_eq!(hosted_groups(&owner_map(4, 2), 0), vec![0, 2]);
        assert_eq!(hosted_groups(&owner_map(4, 2), 1), vec![1, 3]);
        assert_eq!(hosted_groups(&owner_map(4, 3), 2), vec![2]);
    }

    #[test]
    fn job_derivation_is_deterministic() {
        let spec = NetSpec::default();
        let a = build_jobs(&spec);
        let b = build_jobs(&spec);
        assert_eq!(a.len(), b.len());
        for (ja, jb) in a.iter().zip(&b) {
            assert_eq!(ja.seed, jb.seed);
            assert_eq!(
                ja.full_setup().unwrap().groups[0].public_key.0,
                jb.full_setup().unwrap().groups[0].public_key.0
            );
        }
    }

    #[test]
    fn sharded_jobs_match_the_derived_reference_byte_for_byte() {
        let spec = NetSpec {
            groups: 2,
            rounds: 2,
            messages: 4,
            ..NetSpec::default()
        };
        let reference: Vec<_> = Engine::with_workers(2)
            .run_rounds(build_derived_jobs(&spec))
            .into_iter()
            .collect::<Result<_, _>>()
            .unwrap();
        let sharded: Vec<_> = Engine::with_workers(2)
            .run_rounds(build_sharded_jobs(&spec, true))
            .into_iter()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(
            serialize_reports(&reference),
            serialize_reports(&sharded),
            "sharded derivation must not change a single output byte"
        );
        assert!(sharded
            .iter()
            .all(|r| r.setup_latency > Duration::from_nanos(0)));
    }

    #[test]
    fn memberless_sharded_jobs_skip_submission_generation() {
        let spec = NetSpec::default();
        for job in build_sharded_jobs(&spec, false) {
            match &job.submissions {
                RoundSubmissions::Trap(subs) => assert!(subs.is_empty()),
                other => panic!("expected trap submissions, got {other:?}"),
            }
            assert!(job.full_setup().is_none(), "no prebuilt directory");
        }
    }

    #[test]
    fn serialization_covers_every_deterministic_field() {
        let spec = NetSpec {
            groups: 2,
            rounds: 1,
            messages: 4,
            ..NetSpec::default()
        };
        let reports: Vec<_> = Engine::with_workers(2)
            .run_rounds(build_jobs(&spec))
            .into_iter()
            .collect::<Result<_, _>>()
            .unwrap();
        let bytes = serialize_reports(&reports);
        let again = serialize_reports(&reports);
        assert_eq!(bytes, again);
        assert!(bytes.len() > 4, "serialization must not be empty");
    }
}
