//! # atom-bench
//!
//! The reproduction harness for every table and figure in the evaluation
//! section of *Atom: Horizontally Scaling Strong Anonymity* (SOSP 2017).
//!
//! Each experiment is exposed both as a library function (returning the rows
//! it would print, so integration tests can sanity-check the shapes) and as a
//! small binary (`cargo run --release -p atom-bench --bin fig5`, etc.). The
//! Criterion microbenchmarks in `benches/` cover the primitive-level numbers.
//!
//! Absolute numbers will differ from the paper (different curve, different
//! hardware, one machine instead of 1,024); the quantities that must
//! reproduce are the *shapes*: what grows linearly, who is faster than whom
//! and by roughly what factor. `EXPERIMENTS.md` records both.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod fixtures;
pub mod heal;
pub mod ingress;
pub mod netbench;
pub mod recovery;
pub mod scale;
pub mod workload;

pub use experiments::*;
