//! One function per table/figure of the paper's evaluation section.
//!
//! Every function returns its rows (so tests can check shapes) and has a
//! `print_*` companion used by the reproduction binaries.

use std::time::Instant;

use rand::Rng;

use atom_baselines::{riposte_latency_seconds, vuvuzela_latency_seconds};
use atom_core::config::Defense;
use atom_core::group::{group_mix_iteration, GroupStepOptions};
use atom_crypto::dkg::{run_dkg, DkgParams};
use atom_sim::{estimate_round, DeploymentSpec, PrimitiveCosts};
use atom_topology::groups::{required_group_size, GroupSecurityParams};

use crate::fixtures::{bench_rng, group_with_batch};

/// Table 3: primitive latencies measured on this machine, next to the
/// paper's values.
pub fn table3(batch: usize) -> Vec<(&'static str, f64, f64)> {
    let measured = PrimitiveCosts::measure(batch);
    let paper = PrimitiveCosts::paper_table3();
    vec![
        ("Enc", measured.enc, paper.enc),
        ("ReEnc", measured.reenc, paper.reenc),
        (
            "Shuffle (per msg)",
            measured.shuffle_per_msg,
            paper.shuffle_per_msg,
        ),
        (
            "EncProof prove",
            measured.encproof_prove,
            paper.encproof_prove,
        ),
        (
            "EncProof verify",
            measured.encproof_verify,
            paper.encproof_verify,
        ),
        (
            "ReEncProof prove",
            measured.reencproof_prove,
            paper.reencproof_prove,
        ),
        (
            "ReEncProof verify",
            measured.reencproof_verify,
            paper.reencproof_verify,
        ),
        (
            "ShufProof prove (per msg)",
            measured.shufproof_prove_per_msg,
            paper.shufproof_prove_per_msg,
        ),
        (
            "ShufProof verify (per msg)",
            measured.shufproof_verify_per_msg,
            paper.shufproof_verify_per_msg,
        ),
    ]
}

/// Prints Table 3.
pub fn print_table3(batch: usize) {
    println!("Table 3: cryptographic primitive latency (seconds)");
    println!("{:<28} {:>14} {:>14}", "primitive", "measured", "paper");
    for (name, measured, paper) in table3(batch) {
        println!("{name:<28} {measured:>14.3e} {paper:>14.3e}");
    }
}

/// Table 4: anytrust group setup (DKG/DVSS) latency for varying group sizes.
pub fn table4(sizes: &[usize]) -> Vec<(usize, f64)> {
    let mut rng = bench_rng();
    sizes
        .iter()
        .map(|&size| {
            let params = DkgParams::anytrust(size).expect("valid size");
            let start = Instant::now();
            let _ = run_dkg(&params, &mut rng).expect("dkg");
            (size, start.elapsed().as_secs_f64())
        })
        .collect()
}

/// Prints Table 4.
pub fn print_table4(sizes: &[usize]) {
    println!("Table 4: anytrust group setup latency");
    println!("{:<12} {:>14}", "group size", "seconds");
    for (size, seconds) in table4(sizes) {
        println!("{size:<12} {seconds:>14.4}");
    }
    println!("(paper: 4→7.4ms, 8→29.4ms, 16→93.3ms, 32→361.8ms, 64→1432.1ms)");
}

/// One row of Fig. 5/6-style measurements.
#[derive(Clone, Copy, Debug)]
pub struct MixingRow {
    /// The varied parameter (message count or group size).
    pub x: usize,
    /// Seconds per mixing iteration for the NIZK variant.
    pub nizk_seconds: f64,
    /// Seconds per mixing iteration for the trap variant.
    pub trap_seconds: f64,
}

/// Times one mixing iteration for one group under both defences.
fn time_iteration(defense: Defense, group_size: usize, messages: usize, parallelism: usize) -> f64 {
    let (setup, group, batch, padded) = group_with_batch(defense, group_size, messages);
    let next_key = setup.groups[1].public_key;
    let participating = group.participating(&[]).expect("no failures");
    let options = GroupStepOptions {
        defense,
        parallelism,
    };
    let mut rng = bench_rng();
    let start = Instant::now();
    group_mix_iteration(
        &group,
        &participating,
        batch,
        &[next_key],
        padded,
        &options,
        None,
        &mut rng,
    )
    .expect("mixing iteration");
    start.elapsed().as_secs_f64()
}

/// Fig. 5: time per mixing iteration as the number of messages varies
/// (fixed group size). In the trap variant each group handles twice the
/// messages (real + trap), which is accounted for by the caller's counts.
pub fn fig5(group_size: usize, message_counts: &[usize]) -> Vec<MixingRow> {
    message_counts
        .iter()
        .map(|&messages| MixingRow {
            x: messages,
            nizk_seconds: time_iteration(Defense::Nizk, group_size, messages, 1),
            trap_seconds: time_iteration(Defense::Trap, group_size, 2 * messages, 1),
        })
        .collect()
}

/// Prints Fig. 5.
pub fn print_fig5(group_size: usize, message_counts: &[usize]) {
    println!("Figure 5: time per mixing iteration vs number of messages (group of {group_size})");
    println!(
        "{:<12} {:>14} {:>14} {:>8}",
        "messages", "NIZK (s)", "trap (s)", "ratio"
    );
    for row in fig5(group_size, message_counts) {
        println!(
            "{:<12} {:>14.3} {:>14.3} {:>8.2}",
            row.x,
            row.nizk_seconds,
            row.trap_seconds,
            row.nizk_seconds / row.trap_seconds
        );
    }
    println!("(paper, 32 servers: linear in messages; NIZK ≈ 4× trap)");
}

/// Fig. 6: time per mixing iteration as the group size varies (fixed message
/// count).
pub fn fig6(message_count: usize, group_sizes: &[usize]) -> Vec<MixingRow> {
    group_sizes
        .iter()
        .map(|&size| MixingRow {
            x: size,
            nizk_seconds: time_iteration(Defense::Nizk, size, message_count, 1),
            trap_seconds: time_iteration(Defense::Trap, size, 2 * message_count, 1),
        })
        .collect()
}

/// Prints Fig. 6.
pub fn print_fig6(message_count: usize, group_sizes: &[usize]) {
    println!("Figure 6: time per mixing iteration vs group size ({message_count} messages)");
    println!("{:<12} {:>14} {:>14}", "group size", "NIZK (s)", "trap (s)");
    for row in fig6(message_count, group_sizes) {
        println!(
            "{:<12} {:>14.3} {:>14.3}",
            row.x, row.nizk_seconds, row.trap_seconds
        );
    }
    println!("(paper: linear in group size)");
}

/// Fig. 7: speed-up of one mixing iteration as the number of worker threads
/// grows, relative to the smallest thread count, for both variants.
pub fn fig7(group_size: usize, messages: usize, threads: &[usize]) -> Vec<(usize, f64, f64)> {
    let trap_base = time_iteration(Defense::Trap, group_size, messages, threads[0]);
    let nizk_base = time_iteration(Defense::Nizk, group_size, messages, threads[0]);
    threads
        .iter()
        .map(|&t| {
            let trap = time_iteration(Defense::Trap, group_size, messages, t);
            let nizk = time_iteration(Defense::Nizk, group_size, messages, t);
            (t, trap_base / trap, nizk_base / nizk)
        })
        .collect()
}

/// Prints Fig. 7.
pub fn print_fig7(group_size: usize, messages: usize, threads: &[usize]) {
    println!("Figure 7: speed-up vs number of cores (group of {group_size}, {messages} messages)");
    println!(
        "{:<8} {:>14} {:>14}",
        "threads", "trap speedup", "NIZK speedup"
    );
    for (t, trap, nizk) in fig7(group_size, messages, threads) {
        println!("{t:<8} {trap:>14.2} {nizk:>14.2}");
    }
    println!("(paper: near-linear for trap, sub-linear for NIZK)");
}

/// Fig. 9: end-to-end latency vs number of users for microblogging and
/// dialing on a 1,024-server deployment (calibrated model).
pub fn fig9(costs: &PrimitiveCosts, user_counts: &[u64]) -> Vec<(u64, f64, f64)> {
    user_counts
        .iter()
        .map(|&users| {
            let micro = estimate_round(&DeploymentSpec::paper_microblogging(1024, users), costs);
            let dial = estimate_round(&DeploymentSpec::paper_dialing(1024, users), costs);
            (users, micro.total_seconds(), dial.total_seconds())
        })
        .collect()
}

/// Prints Fig. 9.
pub fn print_fig9(costs: &PrimitiveCosts, user_counts: &[u64]) {
    println!("Figure 9: end-to-end latency vs number of messages (1,024 servers)");
    println!(
        "{:<12} {:>18} {:>18}",
        "users", "microblogging (s)", "dialing (s)"
    );
    for (users, micro, dial) in fig9(costs, user_counts) {
        println!("{users:<12} {micro:>18.1} {dial:>18.1}");
    }
    println!("(paper: linear; ~28 min for one million users)");
}

/// Fig. 10: speed-up relative to 128 servers when routing one million
/// microblogging messages.
pub fn fig10(costs: &PrimitiveCosts, server_counts: &[usize]) -> Vec<(usize, f64, f64)> {
    let base = DeploymentSpec::paper_microblogging(server_counts[0], 1_000_000);
    let base_total = estimate_round(&base, costs).total_seconds();
    server_counts
        .iter()
        .map(|&servers| {
            let total = estimate_round(
                &DeploymentSpec::paper_microblogging(servers, 1_000_000),
                costs,
            )
            .total_seconds();
            (servers, total, base_total / total)
        })
        .collect()
}

/// Prints Fig. 10.
pub fn print_fig10(costs: &PrimitiveCosts, server_counts: &[usize]) {
    println!("Figure 10: speed-up vs number of servers (1M microblogging messages)");
    println!("{:<10} {:>14} {:>10}", "servers", "latency (s)", "speed-up");
    for (servers, total, speedup) in fig10(costs, server_counts) {
        println!("{servers:<10} {total:>14.1} {speedup:>10.2}");
    }
    println!("(paper: 128→3.81h, 256→1.89h, 512→0.94h, 1024→0.47h; linear speed-up)");
}

/// Fig. 11: simulated speed-up for very large deployments routing one billion
/// microblogging messages.
pub fn fig11(costs: &PrimitiveCosts, server_exponents: &[u32]) -> Vec<(usize, f64, f64)> {
    let base_servers = 1usize << server_exponents[0];
    let base = estimate_round(
        &DeploymentSpec::paper_microblogging(base_servers, 500_000_000),
        costs,
    )
    .total_seconds();
    server_exponents
        .iter()
        .map(|&exp| {
            let servers = 1usize << exp;
            let total = estimate_round(
                &DeploymentSpec::paper_microblogging(servers, 500_000_000),
                costs,
            )
            .total_seconds();
            (servers, total, base / total)
        })
        .collect()
}

/// Prints Fig. 11.
pub fn print_fig11(costs: &PrimitiveCosts, server_exponents: &[u32]) {
    println!("Figure 11: simulated speed-up, one billion messages");
    println!(
        "{:<10} {:>16} {:>10}",
        "servers", "latency (hours)", "speed-up"
    );
    for (servers, total, speedup) in fig11(costs, server_exponents) {
        println!("{servers:<10} {:>16.1} {speedup:>10.2}", total / 3600.0);
    }
    println!("(paper: 2^10→483.6h ... 2^15→20.5h; sub-linear beyond ~2^13)");
}

/// Table 12: latency to support one million users, Atom vs the baselines.
pub struct Table12Row {
    /// System / configuration label.
    pub system: String,
    /// Microblogging latency in minutes (None where not applicable).
    pub microblog_minutes: Option<f64>,
    /// Dialing latency in minutes (None where not applicable).
    pub dial_minutes: Option<f64>,
}

/// Computes Table 12 using the calibrated deployment model and the baseline
/// cost models (PRG and hybrid-decryption throughput measured locally).
pub fn table12(costs: &PrimitiveCosts) -> Vec<Table12Row> {
    let users = 1_000_000u64;
    let mut rows = Vec::new();
    for servers in [128usize, 256, 512, 1024] {
        let micro = estimate_round(&DeploymentSpec::paper_microblogging(servers, users), costs)
            .total_seconds();
        let dial =
            estimate_round(&DeploymentSpec::paper_dialing(servers, users), costs).total_seconds();
        rows.push(Table12Row {
            system: format!("Atom {servers}x mixed"),
            microblog_minutes: Some(micro / 60.0),
            dial_minutes: Some(dial / 60.0),
        });
    }

    // Riposte: three 36-core machines; calibrate PRG throughput from the
    // measured shuffle cost (a conservative stand-in for AES throughput) or
    // use a typical 1 GB/s per core figure.
    let prg_bytes_per_second = 1.0e9;
    let riposte = riposte_latency_seconds(users, 160, prg_bytes_per_second, 36);
    rows.push(Table12Row {
        system: "Riposte 3x c4.8xlarge".into(),
        microblog_minutes: Some(riposte / 60.0),
        dial_minutes: None,
    });

    // Vuvuzela / Alpenhorn: three 36-core machines, ~50k hybrid ops/s/core.
    let hybrid_ops = 1.0 / costs.enc.max(1e-6);
    let vuvuzela = vuvuzela_latency_seconds(users, hybrid_ops.max(20_000.0), 3, 36);
    rows.push(Table12Row {
        system: "Vuvuzela/Alpenhorn 3x c4.8xlarge".into(),
        microblog_minutes: None,
        dial_minutes: Some(vuvuzela / 60.0),
    });
    rows
}

/// Prints Table 12.
pub fn print_table12(costs: &PrimitiveCosts) {
    println!("Table 12: latency to support one million users (minutes)");
    println!("{:<36} {:>12} {:>12}", "system", "microblog", "dialing");
    for row in table12(costs) {
        let micro = row
            .microblog_minutes
            .map(|m| format!("{m:.1}"))
            .unwrap_or_else(|| "-".into());
        let dial = row
            .dial_minutes
            .map(|m| format!("{m:.1}"))
            .unwrap_or_else(|| "-".into());
        println!("{:<36} {:>12} {:>12}", row.system, micro, dial);
    }
    println!("(paper: Atom 1024 = 28.2 min microblog, 23.7x faster than Riposte; Vuvuzela 56x faster than Atom for dialing)");
}

/// Fig. 13 (Appendix B): required group size vs required honest servers.
pub fn fig13(max_h: usize) -> Vec<(usize, usize)> {
    (1..=max_h)
        .map(|h| {
            let params = GroupSecurityParams::paper_defaults(h);
            (h, required_group_size(&params).expect("satisfiable"))
        })
        .collect()
}

/// Prints Fig. 13.
pub fn print_fig13(max_h: usize) {
    println!(
        "Figure 13: required group size k vs required honest servers h (f=0.2, G=1024, 2^-64)"
    );
    println!("{:<6} {:>6}", "h", "k");
    for (h, k) in fig13(max_h) {
        println!("{h:<6} {k:>6}");
    }
    println!("(paper: k=32 at h=1, rising to ~65-70 at h=20)");
}

/// Ablation: square vs iterated-butterfly topology for the same deployment
/// (per-group load × iterations gives the total work; butterfly needs
/// O(log² G) iterations).
pub fn ablation_topology(groups: usize) -> Vec<(&'static str, usize, usize)> {
    use atom_topology::network::{ButterflyNetwork, SquareNetwork, Topology};
    let square = SquareNetwork::paper_default(groups);
    let butterfly = ButterflyNetwork::for_groups(groups);
    vec![
        ("square", square.iterations(), square.branching_factor()),
        (
            "butterfly",
            butterfly.iterations(),
            butterfly.branching_factor(),
        ),
    ]
}

/// Prints the topology ablation.
pub fn print_ablation_topology(groups: usize) {
    println!("Ablation: topology choice at {groups} groups");
    println!("{:<12} {:>12} {:>10}", "topology", "iterations", "beta");
    for (name, iterations, beta) in ablation_topology(groups) {
        println!("{name:<12} {iterations:>12} {beta:>10}");
    }
    println!("(the square network's shallower depth is why the paper uses it)");
}

/// Ablation: per-iteration mixing time vs message length (number of group
/// elements per ciphertext).
pub fn ablation_msgsize(group_size: usize, messages: usize, lens: &[usize]) -> Vec<(usize, f64)> {
    use crate::fixtures::{bench_config, encrypted_batch};
    use atom_core::directory::setup_round;
    lens.iter()
        .map(|&len| {
            let mut config = bench_config(Defense::Trap, 2, group_size);
            config.message_len = len;
            let padded = crate::fixtures::payload_len(&config);
            let setup = setup_round(&config, &mut bench_rng()).expect("setup");
            let group = setup.groups[0].clone();
            let batch = encrypted_batch(&group.public_key, messages, padded, &mut bench_rng());
            let participating = group.participating(&[]).unwrap();
            let start = Instant::now();
            group_mix_iteration(
                &group,
                &participating,
                batch,
                &[setup.groups[1].public_key],
                padded,
                &GroupStepOptions::new(Defense::Trap),
                None,
                &mut bench_rng(),
            )
            .expect("iteration");
            (len, start.elapsed().as_secs_f64())
        })
        .collect()
}

/// Prints the message-size ablation.
pub fn print_ablation_msgsize(group_size: usize, messages: usize, lens: &[usize]) {
    println!("Ablation: mixing-iteration time vs message length ({messages} messages, group of {group_size})");
    println!("{:<14} {:>14}", "message bytes", "seconds");
    for (len, seconds) in ablation_msgsize(group_size, messages, lens) {
        println!("{len:<14} {seconds:>14.3}");
    }
    println!("(paper §6.1: latency increases linearly with the message size)");
}

/// Parses a `--full` flag from the binary arguments.
pub fn full_mode() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// A deterministic jitter helper for experiment labels (kept here so the
/// binaries stay dependency-free).
pub fn seeded_percent(seed: u64) -> f64 {
    let mut rng = bench_rng();
    let _ = seed;
    rng.gen_range(0.0..1.0)
}
