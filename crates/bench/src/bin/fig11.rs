//! Reproduces Figure 11: simulated speed-up for 2^10-2^15 servers.
use atom_sim::PrimitiveCosts;
fn main() {
    let costs = PrimitiveCosts::measure(if atom_bench::full_mode() { 512 } else { 128 });
    atom_bench::print_fig11(&costs, &[10, 11, 12, 13, 14, 15]);
}
