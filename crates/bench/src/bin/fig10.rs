//! Reproduces Figure 10: horizontal scalability, 128-1024 servers.
use atom_sim::PrimitiveCosts;
fn main() {
    let costs = PrimitiveCosts::measure(if atom_bench::full_mode() { 512 } else { 128 });
    atom_bench::print_fig10(&costs, &[128, 256, 512, 1024]);
}
