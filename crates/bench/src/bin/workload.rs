//! Records `BENCH_workload.json`: deterministic traffic models (Zipf
//! microblog fan-in under a diurnal curve, dialing bursts, trap and NIZK
//! variants) pulled through the engine's bounded streaming intake, plus
//! the adversary scenario suite's verdicts.
//!
//! The headline configuration regenerates the committed baseline — a
//! million-user population offering a million submissions through a
//! bounded intake window, proving the offered load never has to be
//! resident:
//!
//! ```text
//! cargo run --release -p atom-bench --bin workload -- \
//!     --users 1000000 --submissions 1000000 --out BENCH_workload.json
//! ```
//!
//! CI runs a small sweep with `--check-equivalence`, which re-runs every
//! pattern through the materialized intake path and byte-compares the
//! reports. Schema and units: `docs/benchmarks.md`.
//!
//! Usage: `cargo run --release -p atom-bench --bin workload --
//! [--groups N] [--iterations I] [--users U] [--rounds R]
//! [--submissions S] [--window W] [--chunk C] [--workers T] [--seed X]
//! [--check-equivalence] [--out PATH]`

use atom_bench::workload::{print_fig_workload, run_workload, WorkloadSweepSpec};

fn main() {
    let mut spec = WorkloadSweepSpec::default();
    let mut workers = 2;
    let mut out: Option<String> = None;
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut grab_str = |name: &str| -> String {
            iter.next()
                .unwrap_or_else(|| panic!("{name} needs an argument"))
        };
        let grab = |name: &str, value: String| -> u64 {
            value
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("{name} needs a numeric argument"))
        };
        match flag.as_str() {
            "--groups" => spec.groups = grab("--groups", grab_str("--groups")) as usize,
            "--iterations" => {
                spec.iterations = grab("--iterations", grab_str("--iterations")) as usize
            }
            "--users" => spec.users = grab("--users", grab_str("--users")) as usize,
            "--rounds" => spec.rounds = grab("--rounds", grab_str("--rounds")) as usize,
            "--submissions" => {
                spec.submissions = grab("--submissions", grab_str("--submissions")) as usize
            }
            "--window" => spec.window = grab("--window", grab_str("--window")) as usize,
            "--chunk" => spec.chunk = grab("--chunk", grab_str("--chunk")) as usize,
            "--workers" => workers = grab("--workers", grab_str("--workers")) as usize,
            "--seed" => spec.seed = grab("--seed", grab_str("--seed")),
            "--check-equivalence" => spec.check_equivalence = true,
            "--out" => out = Some(grab_str("--out")),
            other => panic!("unknown flag {other}"),
        }
    }
    let baseline = run_workload(&spec, workers).unwrap_or_else(|error| panic!("{error}"));
    print_fig_workload(&baseline);
    if let Some(path) = &out {
        std::fs::write(path, baseline.to_json()).expect("write BENCH_workload.json");
        println!("\nwrote {path}");
    }
}
