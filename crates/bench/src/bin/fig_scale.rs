//! Renders the paper's signature figure — throughput vs. number of
//! servers — from the recorded horizontal-scaling baseline.
//!
//! Reads `BENCH_scale.json` (path overridable as the first argument) and
//! prints the (processes × workers) table plus the throughput-vs-processes
//! curve for both directory modes. Regenerate the baseline with:
//!
//! ```text
//! cargo run --release -p atom-bench --bin throughput -- \
//!     --transport tcp --processes 1,2,3,4 --out BENCH_scale.json
//! ```
//!
//! Schema and units: `docs/benchmarks.md`.

use atom_bench::scale::{print_fig_scale, ScaleBaseline};

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_scale.json".to_string());
    let json = std::fs::read_to_string(&path).unwrap_or_else(|error| {
        panic!(
            "read {path}: {error} — regenerate with `cargo run --release -p atom-bench \
             --bin throughput -- --transport tcp --processes 1,2,3,4 --out BENCH_scale.json`"
        )
    });
    let baseline = ScaleBaseline::parse(&json).unwrap_or_else(|error| panic!("{path}: {error}"));
    print_fig_scale(&baseline);
}
