//! Reproduces Figure 9: end-to-end latency vs number of messages.
use atom_sim::PrimitiveCosts;
fn main() {
    let costs = if atom_bench::full_mode() {
        PrimitiveCosts::measure(512)
    } else {
        PrimitiveCosts::measure(128)
    };
    println!("calibrated costs: {costs:?}");
    atom_bench::print_fig9(
        &costs,
        &[250_000, 500_000, 750_000, 1_000_000, 1_500_000, 2_000_000],
    );
}
