//! Reproduces Figure 13 (Appendix B): group size vs fault-tolerance parameter.
fn main() {
    atom_bench::print_fig13(20);
}
