//! Reproduces Figure 6: mixing-iteration time vs group size.
fn main() {
    if atom_bench::full_mode() {
        atom_bench::print_fig6(1024, &[4, 8, 16, 32, 64]);
    } else {
        atom_bench::print_fig6(128, &[4, 8, 16, 32]);
    }
}
