//! The recovery experiment: measures how fast a self-healing fleet gets
//! back to delivering rounds after losing a member.
//!
//! Runs a three-OS-process healing deployment (coordinator in this
//! process, two `--heal-member` children — this binary re-executed),
//! SIGKILLs member 2 after round `--kill-at` completes, restarts it with
//! the rejoin handshake after round `--restart-at`, and records:
//!
//! * **detection → first healed round** — the wall-clock gap between the
//!   coordinator convicting the dead process and the first round completed
//!   afterwards (the paper-facing recovery latency), and
//! * **healed throughput** — messages/sec over the rounds completed after
//!   the detection, next to the whole run's rate.
//!
//! With `--out PATH` the measurement is written as `BENCH_recovery.json`
//! (schema: [`atom_bench::recovery`], rendered by the `fig_recovery` bin).
//!
//! Usage: `cargo run --release -p atom-bench --bin recovery --
//! [--rounds N] [--messages M] [--kill-at R] [--restart-at R]
//! [--batch B] [--honest H] [--out PATH]`

use std::process::Command;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use atom_bench::heal;
use atom_bench::netbench::{self, NetSpec, ProcessFleet};
use atom_bench::recovery::RecoveryBaseline;
use atom_runtime::RoundCompleteHook;

const PROCESSES: usize = 3;
const GROUPS: usize = 3;

struct Args {
    spec: NetSpec,
    batch: usize,
    workers: usize,
    kill_at: usize,
    restart_at: usize,
    out: Option<String>,
    /// Internal: run as one healing member of the fleet.
    member: Option<(usize, Vec<String>, bool)>,
}

fn parse_args() -> Args {
    let mut args = Args {
        spec: NetSpec {
            groups: GROUPS,
            rounds: 8,
            messages: 12,
            iterations: 2,
            seed: 0x4EA1_BEAC,
            delay: Duration::from_millis(25),
            sharded: false,
            stall_timeout: Duration::from_secs(2),
            trace: false,
            honest: 2,
            ..NetSpec::default()
        },
        batch: 1,
        workers: 2,
        kill_at: 1,
        restart_at: 3,
        out: None,
        member: None,
    };
    let (mut is_member, mut index, mut addrs, mut rejoin) = (false, 0usize, Vec::new(), false);
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut grab = |name: &str| -> String {
            iter.next()
                .unwrap_or_else(|| panic!("{name} needs an argument"))
        };
        let num = |name: &str, value: String| -> u64 {
            value
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("{name} needs a numeric argument"))
        };
        match flag.as_str() {
            "--rounds" => args.spec.rounds = num("--rounds", grab("--rounds")) as usize,
            "--messages" => args.spec.messages = num("--messages", grab("--messages")) as usize,
            "--iterations" => {
                args.spec.iterations = num("--iterations", grab("--iterations")) as usize
            }
            "--seed" => args.spec.seed = num("--seed", grab("--seed")),
            "--delay-ms" => {
                args.spec.delay = Duration::from_millis(num("--delay-ms", grab("--delay-ms")))
            }
            "--stall-timeout-ms" => {
                args.spec.stall_timeout =
                    Duration::from_millis(num("--stall-timeout-ms", grab("--stall-timeout-ms")))
            }
            "--honest" => args.spec.honest = num("--honest", grab("--honest")) as usize,
            "--batch" => args.batch = num("--batch", grab("--batch")) as usize,
            "--workers" => args.workers = num("--workers", grab("--workers")) as usize,
            "--kill-at" => args.kill_at = num("--kill-at", grab("--kill-at")) as usize,
            "--restart-at" => args.restart_at = num("--restart-at", grab("--restart-at")) as usize,
            "--out" => args.out = Some(grab("--out")),
            "--heal-member" => is_member = true,
            "--index" => index = num("--index", grab("--index")) as usize,
            "--addrs" => addrs = grab("--addrs").split(',').map(str::to_string).collect(),
            "--rejoin" => rejoin = true,
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(
        args.kill_at < args.restart_at && args.restart_at + 2 < args.spec.rounds,
        "need kill-at < restart-at and at least two rounds after the restart \
         for the readmission to land"
    );
    if is_member {
        args.member = Some((index, addrs, rejoin));
    }
    args
}

/// The `--heal-member` command hosting process `index` of this deployment.
fn member_command(args: &Args, addrs: &[String], index: usize, rejoin: bool) -> Command {
    let mut command = Command::new(std::env::current_exe().expect("own binary path"));
    command
        .arg("--heal-member")
        .arg("--index")
        .arg(index.to_string())
        .arg("--addrs")
        .arg(addrs.join(","))
        .arg("--rounds")
        .arg(args.spec.rounds.to_string())
        .arg("--messages")
        .arg(args.spec.messages.to_string())
        .arg("--iterations")
        .arg(args.spec.iterations.to_string())
        .arg("--seed")
        .arg(args.spec.seed.to_string())
        .arg("--delay-ms")
        .arg(args.spec.delay.as_millis().to_string())
        .arg("--stall-timeout-ms")
        .arg(args.spec.stall_timeout.as_millis().to_string())
        .arg("--honest")
        .arg(args.spec.honest.to_string())
        .arg("--batch")
        .arg(args.batch.to_string())
        .arg("--workers")
        .arg(args.workers.to_string());
    if rejoin {
        command.arg("--rejoin");
    }
    command
}

fn main() {
    let args = parse_args();
    if let Some((index, addrs, rejoin)) = &args.member {
        let result = heal::run_healing_member(
            &args.spec,
            args.batch,
            addrs.clone(),
            *index,
            args.workers,
            *rejoin,
            || {
                use std::io::Write;
                println!("{}", netbench::READY_LINE);
                std::io::stdout().flush().expect("flush readiness signal");
            },
        );
        if let Err(error) = result {
            eprintln!("recovery member {index}: {error}");
            std::process::exit(1);
        }
        return;
    }

    let addrs = netbench::free_addrs(PROCESSES);
    let fleet = Arc::new(Mutex::new(Some(ProcessFleet::spawn(vec![
        member_command(&args, &addrs, 1, false),
        member_command(&args, &addrs, 2, false),
    ]))));
    println!(
        "recovery: {GROUPS}-group healing deployment over {PROCESSES} processes, \
         {} rounds x {} messages (batch {}, h = {}); killing process 2 after \
         round {}, restarting after round {}",
        args.spec.rounds,
        args.spec.messages,
        args.batch,
        args.spec.honest,
        args.kill_at,
        args.restart_at
    );

    let hook: RoundCompleteHook = {
        let fleet = fleet.clone();
        let restart_command = member_command(&args, &addrs, 2, true);
        let restart_command = Arc::new(Mutex::new(Some(restart_command)));
        let (kill_at, restart_at) = (args.kill_at, args.restart_at);
        Arc::new(move |round| {
            let mut guard = fleet.lock().unwrap();
            let fleet = guard.as_mut().expect("fleet alive during the run");
            if round == kill_at {
                fleet.kill_member(2);
            }
            if round == restart_at {
                let command = restart_command
                    .lock()
                    .unwrap()
                    .take()
                    .expect("restart fires once");
                fleet
                    .restart_member(2, command)
                    .expect("restart the killed member");
            }
        })
    };

    let outcome =
        heal::run_recovery_coordinator(&args.spec, args.batch, addrs, args.workers, Some(hook))
            .unwrap_or_else(|error| {
                if let Some(fleet) = fleet.lock().unwrap().as_mut() {
                    fleet.kill_all();
                }
                panic!("recovery run failed: {error}");
            });
    fleet
        .lock()
        .unwrap()
        .take()
        .expect("fleet still owned")
        .finish(Duration::from_secs(120))
        .unwrap_or_else(|error| panic!("fleet teardown: {error}"));

    let delivered: usize = outcome
        .reports
        .iter()
        .map(|r| r.output.plaintexts.len())
        .sum();
    assert_eq!(
        delivered,
        args.spec.rounds * args.spec.messages,
        "the healed run may not lose messages"
    );
    let detected_at = outcome
        .detected_at
        .expect("the kill must be detected for the experiment to mean anything");
    let healed_latency = outcome
        .healed_latency
        .expect("at least one round must complete after the detection");
    let healed_window = outcome.wall.saturating_sub(detected_at);
    let healed_delivered = outcome.healed_rounds.len() * args.spec.messages;

    let baseline = RecoveryBaseline {
        processes: PROCESSES,
        groups: GROUPS,
        rounds: args.spec.rounds,
        messages: args.spec.messages,
        iterations: args.spec.iterations,
        batch: args.batch,
        honest: args.spec.honest,
        evictions: outcome.evictions.len(),
        rejoins: outcome.rejoins.len(),
        epochs: outcome.epochs,
        detection_to_healed_ms: healed_latency.as_secs_f64() * 1e3,
        msgs_per_sec: delivered as f64 / outcome.wall.as_secs_f64(),
        healed_msgs_per_sec: healed_delivered as f64 / healed_window.as_secs_f64(),
        wall_ms: outcome.wall.as_secs_f64() * 1e3,
    };
    println!(
        "recovery: {} eviction(s), {} rejoin(s) over {} epoch(s); detection -> \
         first healed round {:.1} ms; {:.1} msgs/sec overall, {:.1} msgs/sec healed",
        baseline.evictions,
        baseline.rejoins,
        baseline.epochs,
        baseline.detection_to_healed_ms,
        baseline.msgs_per_sec,
        baseline.healed_msgs_per_sec
    );
    if let Some(path) = &args.out {
        std::fs::write(path, baseline.to_json()).expect("write BENCH_recovery.json");
        println!("wrote {path}");
    }
}
