//! Extra ablations called out in DESIGN.md: topology choice and message size.
fn main() {
    atom_bench::print_ablation_topology(1024);
    println!();
    if atom_bench::full_mode() {
        atom_bench::print_ablation_msgsize(8, 256, &[32, 64, 160, 320]);
    } else {
        atom_bench::print_ablation_msgsize(4, 64, &[32, 64, 160]);
    }
}
