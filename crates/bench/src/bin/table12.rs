//! Reproduces Table 12: comparison against Riposte, Vuvuzela and Alpenhorn.
use atom_sim::PrimitiveCosts;
fn main() {
    let costs = PrimitiveCosts::measure(if atom_bench::full_mode() { 512 } else { 128 });
    atom_bench::print_table12(&costs);
}
