//! Renders the recovery experiment — eviction, healing and rejoin under
//! churn — from the recorded baseline.
//!
//! Reads `BENCH_recovery.json` (path overridable as the first argument)
//! and prints the churn summary, the detection-to-healed-round latency and
//! the healed-vs-overall throughput bars. Regenerate the baseline with:
//!
//! ```text
//! cargo run --release -p atom-bench --bin recovery -- --out BENCH_recovery.json
//! ```
//!
//! Schema and units: `docs/benchmarks.md`.

use atom_bench::recovery::{print_fig_recovery, RecoveryBaseline};

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_recovery.json".to_string());
    let json = std::fs::read_to_string(&path).unwrap_or_else(|error| {
        panic!(
            "read {path}: {error} — regenerate with `cargo run --release -p atom-bench \
             --bin recovery -- --out BENCH_recovery.json`"
        )
    });
    let baseline = RecoveryBaseline::parse(&json).unwrap_or_else(|error| panic!("{path}: {error}"));
    print_fig_recovery(&baseline);
}
