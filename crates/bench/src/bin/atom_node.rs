//! `atom-node` — one process of a multi-process Atom deployment.
//!
//! Each invocation hosts a subset of the anytrust groups of a
//! deterministically derived workload (see `atom_bench::netbench`) and
//! talks to its peers over `TcpTransport`. Process 0 is the coordinator:
//! it verifies submission intake, injects the iteration-0 batches,
//! collects every group's exit frame and reports the round outputs.
//! Groups are assigned round-robin over all processes (coordinator
//! included).
//!
//! A two-process loopback run:
//!
//! ```text
//! cargo run --release -p atom-bench --bin atom-node -- \
//!     --index 1 --addrs 127.0.0.1:7401,127.0.0.1:7402 --groups 4 &
//! cargo run --release -p atom-bench --bin atom-node -- \
//!     --index 0 --addrs 127.0.0.1:7401,127.0.0.1:7402 --groups 4 \
//!     --out /tmp/atom_node_output.bin
//! ```
//!
//! Every process must receive the same `--addrs`, `--groups`, `--rounds`,
//! `--messages`, `--iterations`, `--seed` and `--sharded`; the workload
//! derivation is a pure function of those, which is what makes the run
//! coordination-free (the full operator guide, including N-process and
//! multi-machine invocations, is `docs/operations.md`). With `--out`, the
//! coordinator writes the canonical serialization of the round outputs —
//! the TCP equivalence test diffs it byte-for-byte against a
//! single-process in-memory run of the same spec.
//!
//! Once its setup (bind, connect, job derivation) is done, every process
//! prints `atom-process-ready` on stdout — the readiness handshake
//! orchestrators (`netbench::ProcessFleet`) wait on. `--stall-timeout-ms`
//! bounds how long the engine waits with no progress before declaring a
//! silent peer dead and failing the affected rounds.
//!
//! With `--sharded`, round setup itself is distributed: each process runs
//! only the DKGs of the groups it hosts and ships the public keys to its
//! peers as `setup` frames, instead of every process re-deriving the full
//! directory before the engine starts. The coordinator reports the
//! measured per-round setup latency.
//!
//! With `--heal`, the process joins a *self-healing* deployment instead
//! (`atom_bench::heal`): rounds run in batches of `--batch`, separated by
//! a membership handshake, and a vanished process is evicted — the
//! survivors re-form its groups and keep delivering — rather than fatal.
//! `--honest` sets the per-group honest-member assumption `h` (losses up
//! to `h − 1` per group heal by Lagrange reweighting, deeper ones via
//! buddy escrow). A member restarted after a crash passes `--rejoin` as
//! well: it announces itself to the coordinator with a catch-up handshake
//! and is readmitted at the next healthy batch boundary.
//!
//! With `--trace PATH` on **every** process, each one records `atom-obs`
//! spans and counters while it runs; members ship their snapshots to the
//! coordinator as `telemetry` wire frames at round end (their PATH is
//! ignored), and the coordinator writes the merged fleet trace to its PATH
//! as Chrome trace-event JSON — one Perfetto process track per OS process.
//! `--metrics-out PATH` (coordinator, with `--trace`) additionally writes
//! the merged counters. Recording never changes round outputs; see
//! `docs/observability.md` for the schemas.

use std::io::Write;
use std::time::{Duration, Instant};

use atom_bench::heal;
use atom_bench::netbench::{self, NetSpec};

struct Args {
    spec: NetSpec,
    addrs: Vec<String>,
    index: usize,
    workers: usize,
    out: Option<String>,
    /// Self-healing mode: survive member loss via eviction + re-formation.
    heal: bool,
    /// Healing member only: announce as a restarted process (rejoin
    /// handshake) instead of expecting to be part of the fleet from round 0.
    rejoin: bool,
    /// Healing mode: rounds per batch (the re-formation / readmission
    /// boundary spacing).
    batch: usize,
    /// Coordinator: write the merged fleet Chrome trace here. Members pass
    /// the flag with any path to turn recording on (their snapshots travel
    /// to the coordinator as telemetry frames; the path is ignored).
    trace: Option<String>,
    /// Coordinator: write the merged counter snapshots as JSON here.
    metrics_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        spec: NetSpec::default(),
        addrs: Vec::new(),
        index: 0,
        workers: 2,
        out: None,
        heal: false,
        rejoin: false,
        batch: 1,
        trace: None,
        metrics_out: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut grab = |name: &str| -> String {
            iter.next()
                .unwrap_or_else(|| panic!("{name} needs an argument"))
        };
        let num = |name: &str, value: String| -> u64 {
            value
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("{name} needs a numeric argument"))
        };
        match flag.as_str() {
            "--index" => args.index = num("--index", grab("--index")) as usize,
            "--addrs" => {
                args.addrs = grab("--addrs")
                    .split(',')
                    .map(|addr| addr.trim().to_string())
                    .filter(|addr| !addr.is_empty())
                    .collect()
            }
            "--groups" => args.spec.groups = num("--groups", grab("--groups")) as usize,
            "--rounds" => args.spec.rounds = num("--rounds", grab("--rounds")) as usize,
            "--messages" => args.spec.messages = num("--messages", grab("--messages")) as usize,
            "--iterations" => {
                args.spec.iterations = num("--iterations", grab("--iterations")) as usize
            }
            "--seed" => args.spec.seed = num("--seed", grab("--seed")),
            "--delay-ms" => {
                args.spec.delay = Duration::from_millis(num("--delay-ms", grab("--delay-ms")))
            }
            "--workers" => args.workers = num("--workers", grab("--workers")) as usize,
            "--sharded" => args.spec.sharded = true,
            "--stall-timeout-ms" => {
                args.spec.stall_timeout =
                    Duration::from_millis(num("--stall-timeout-ms", grab("--stall-timeout-ms")))
            }
            "--honest" => args.spec.honest = num("--honest", grab("--honest")) as usize,
            "--heal" => args.heal = true,
            "--rejoin" => {
                args.heal = true;
                args.rejoin = true;
            }
            "--batch" => args.batch = num("--batch", grab("--batch")) as usize,
            "--out" => args.out = Some(grab("--out")),
            "--trace" => args.trace = Some(grab("--trace")),
            "--metrics-out" => args.metrics_out = Some(grab("--metrics-out")),
            other => panic!("unknown flag {other}"),
        }
    }
    args.spec.trace = args.trace.is_some();
    assert!(
        args.addrs.len() >= 2,
        "--addrs needs at least coordinator + one member (got {})",
        args.addrs.len()
    );
    assert!(
        args.index < args.addrs.len(),
        "--index {} out of range for {} addresses",
        args.index,
        args.addrs.len()
    );
    args
}

/// The self-healing variant: coordinator runs the recovery loop, members
/// the plan/ack/go handshake loop. Exits non-zero on an unrecoverable
/// failure; member-side round failures during churn are expected and do
/// not fail the process (the coordinator owns the diagnosis).
fn run_heal(args: &Args) {
    if args.index == 0 {
        let start = Instant::now();
        let outcome = heal::run_recovery_coordinator(
            &args.spec,
            args.batch,
            args.addrs.clone(),
            args.workers,
            None,
        )
        .unwrap_or_else(|error| {
            eprintln!("atom-node coordinator: recovery failed: {error}");
            std::process::exit(1);
        });
        let wall = start.elapsed();
        let delivered: usize = outcome
            .reports
            .iter()
            .map(|r| r.output.plaintexts.len())
            .sum();
        println!(
            "atom-node coordinator: healed deployment — {} rounds in {} epoch(s), \
             {} eviction(s), {} rejoin(s), {delivered} delivered in {wall:.2?}",
            args.spec.rounds,
            outcome.epochs,
            outcome.evictions.len(),
            outcome.rejoins.len(),
        );
        if let Some(latency) = outcome.healed_latency {
            println!("atom-node coordinator: detection -> first healed round in {latency:.2?}");
        }
        if let Some(path) = &args.out {
            std::fs::write(path, netbench::serialize_reports(&outcome.reports))
                .expect("write round outputs");
            println!("atom-node coordinator: outputs written to {path}");
        }
    } else {
        let result = heal::run_healing_member(
            &args.spec,
            args.batch,
            args.addrs.clone(),
            args.index,
            args.workers,
            args.rejoin,
            || {
                println!("{}", netbench::READY_LINE);
                std::io::stdout().flush().expect("flush readiness signal");
            },
        );
        if let Err(error) = result {
            eprintln!("atom-node member {}: {error}", args.index);
            std::process::exit(1);
        }
        println!(
            "atom-node member {}: left the healed deployment cleanly",
            args.index
        );
    }
}

fn main() {
    let args = parse_args();
    if args.heal {
        run_heal(&args);
        return;
    }
    // Setup (job derivation, bind, connect retries) first, then the
    // readiness line: an orchestrator (`netbench::ProcessFleet`) waiting
    // for it knows this engine is about to run, so its timed region starts
    // with the whole deployment ready.
    let process =
        netbench::Process::start(&args.spec, args.addrs.clone(), args.index, args.workers);
    println!("{}", netbench::READY_LINE);
    std::io::stdout().flush().expect("flush readiness signal");

    let start = Instant::now();
    let results = process.try_run();
    let wall = start.elapsed();
    // A lost peer or a failed round surfaces as per-round errors (the
    // engine's send-failure containment and stall detector guarantee it);
    // report every one and exit non-zero so an orchestrator sees a status,
    // not a hang.
    let failures: Vec<String> = results
        .iter()
        .enumerate()
        .filter_map(|(round, result)| {
            result
                .as_ref()
                .err()
                .map(|error| format!("round {round}: {error:?}"))
        })
        .collect();
    if !failures.is_empty() {
        for failure in &failures {
            eprintln!("atom-node process {}: {failure}", args.index);
        }
        std::process::exit(1);
    }
    let reports: Vec<_> = results
        .into_iter()
        .map(|r| r.expect("checked above"))
        .collect();

    if args.index == 0 {
        let delivered: usize = reports.iter().map(|r| r.output.plaintexts.len()).sum();
        let expected = args.spec.rounds * args.spec.messages;
        assert_eq!(delivered, expected, "no message may be lost");
        let rate = delivered as f64 / wall.as_secs_f64();
        println!(
            "atom-node coordinator: {} processes, {} groups, {} rounds x {} messages \
             -> {delivered} delivered in {wall:.2?} ({rate:.1} msgs/sec)",
            args.addrs.len(),
            args.spec.groups,
            args.spec.rounds,
            args.spec.messages,
        );
        if args.spec.sharded {
            let setup_max = reports
                .iter()
                .map(|r| r.setup_latency)
                .max()
                .unwrap_or_default();
            println!(
                "atom-node coordinator: sharded directory — max per-round setup latency \
                 {setup_max:.2?} (overlapped across rounds, not additive)"
            );
        }
        if let Some(path) = &args.out {
            std::fs::write(path, netbench::serialize_reports(&reports))
                .expect("write round outputs");
            println!("atom-node coordinator: outputs written to {path}");
        }
        if let Some(path) = &args.trace {
            let telemetry: Vec<atom_obs::Snapshot> = reports
                .iter()
                .flat_map(|report| report.telemetry.iter().cloned())
                .collect();
            std::fs::write(path, atom_obs::chrome_trace_json(&telemetry))
                .expect("write fleet trace JSON");
            println!(
                "atom-node coordinator: fleet trace written to {path} \
                 ({} snapshots)",
                telemetry.len()
            );
            print!("{}", atom_obs::text_summary(&telemetry));
            if let Some(metrics_path) = &args.metrics_out {
                std::fs::write(metrics_path, atom_obs::metrics_json(&telemetry))
                    .expect("write metrics JSON");
                println!("atom-node coordinator: metrics written to {metrics_path}");
            }
        } else {
            assert!(
                args.metrics_out.is_none(),
                "--metrics-out needs --trace (recording is off otherwise)"
            );
        }
    } else {
        println!(
            "atom-node member {}: hosted its groups to completion in {wall:.2?}",
            args.index
        );
    }
}
