//! Renders the recorded workload baseline — deterministic traffic models
//! through the streaming intake, and the adversary suite's verdicts.
//!
//! Reads `BENCH_workload.json` (path overridable as the first argument)
//! and prints the pattern table (throughput, peak intake residency,
//! streaming-equivalence flag) plus each adversary scenario's verdict and
//! liveness floor. Regenerate the baseline with:
//!
//! ```text
//! cargo run --release -p atom-bench --bin workload -- \
//!     --users 1000000 --submissions 1000000 --out BENCH_workload.json
//! ```
//!
//! Schema and units: `docs/benchmarks.md`.

use atom_bench::workload::{print_fig_workload, WorkloadBaseline};

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_workload.json".to_string());
    let json = std::fs::read_to_string(&path).unwrap_or_else(|error| {
        panic!(
            "read {path}: {error} — regenerate with `cargo run --release -p atom-bench \
             --bin workload -- --users 1000000 --submissions 1000000 --out BENCH_workload.json`"
        )
    });
    let baseline = WorkloadBaseline::parse(&json).unwrap_or_else(|error| panic!("{path}: {error}"));
    print_fig_workload(&baseline);
}
