//! Reproduces Figure 5: mixing-iteration time vs number of messages.
fn main() {
    if atom_bench::full_mode() {
        atom_bench::print_fig5(32, &[128, 512, 2048, 8192, 16384]);
    } else {
        atom_bench::print_fig5(8, &[64, 128, 256, 512]);
    }
}
