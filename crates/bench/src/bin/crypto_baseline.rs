//! Crypto-engine perf baseline: times the key batched-engine paths against
//! their naive counterparts and writes `BENCH_crypto.json` (repo root) so CI
//! and future sessions can compare against a recorded baseline.
//!
//! Usage: `cargo run --release -p atom-bench --bin crypto_baseline --
//! [--out PATH] [--iters N]`
//!
//! The emitted JSON holds mean microseconds per operation plus the speedup
//! ratios the acceptance gates care about (`fixed_base_speedup`,
//! `enc_batch_speedup`, `reenc_batch_speedup`, `shuffle_batch_speedup`).
//! The binary asserts the gated ratios itself, so a regression fails CI.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use curve25519_dalek::field::{PowTable, P, U256};

use atom_crypto::batch::{
    verify_encryption_batch, verify_reencryption_batch, verify_shuffle_batch, EncVerification,
    ShuffleVerification,
};
use atom_crypto::elgamal::{encrypt_message, reencrypt_message, shuffle, KeyPair};
use atom_crypto::encoding::encode_message;
use atom_crypto::nizk::enc::{prove_encryption, verify_encryption};
use atom_crypto::nizk::reenc::{prove_reencryption, verify_reencryption, ReEncStatement};
use atom_crypto::nizk::shuffle::{prove_shuffle, verify_shuffle_sequential, ShuffleProof};

const BATCH: usize = 16;
/// Members in the benchmarked shuffle chain (one proof per member).
const SHUF_MEMBERS: usize = 4;
/// Messages flowing through the benchmarked shuffle chain.
const SHUF_MSGS: usize = 32;

struct Args {
    out: String,
    iters: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        out: "BENCH_crypto.json".to_string(),
        iters: 20,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--out" => args.out = iter.next().expect("--out needs a path"),
            "--iters" => {
                args.iters = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--iters needs a number")
            }
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// Minimum microseconds per call of `f` over `iters` timed runs (one
/// warm-up). The minimum — not the mean — is reported because it is robust
/// to scheduler noise on shared or single-core hosts; a noisy-neighbor
/// stall inflates some samples but never deflates the fastest one, so the
/// speedup gates below cannot fail spuriously.
fn time_us<T>(iters: usize, mut f: impl FnMut() -> T) -> f64 {
    std::hint::black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e6);
    }
    best
}

fn pow_naive(base: &U256, exp: &U256) -> U256 {
    let mut acc = U256::ONE;
    for i in (0..256).rev() {
        acc = P.mul(&acc, &acc);
        if exp.bit(i) {
            acc = P.mul(&acc, base);
        }
    }
    acc
}

/// The pre-optimization `EncProof` verifier, reconstructed: every
/// scalar-point multiplication runs the naive 256-bit square-and-multiply
/// ladder (what the seed's vendored group did for *all* multiplications,
/// including the basepoint-table stand-in). This is the "naive path" the
/// batch-verification speedup is measured against.
fn verify_encryption_naive(
    pk: &atom_crypto::PublicKey,
    group_id: u64,
    ct: &atom_crypto::MessageCiphertext,
    proof: &atom_crypto::nizk::enc::EncProof,
) {
    use curve25519_dalek::scalar::Scalar;
    let naive_mul = |s: &Scalar, p: &curve25519_dalek::ristretto::RistrettoPoint| {
        let bytes = p.compress().to_bytes();
        let exp = U256::from_le_bytes(s.as_bytes());
        let base = U256::from_le_bytes(&bytes);
        pow_naive(&base, &exp)
    };
    // Recompute the Fiat-Shamir challenge exactly as the verifier does
    // (the transcript layout is part of the proof format).
    let mut t = atom_crypto::transcript::Transcript::new(b"atom-enc-proof");
    t.append_point(b"group-pk", &pk.0);
    t.append_u64(b"entry-group-id", group_id);
    t.append_u64(b"components", ct.components.len() as u64);
    for component in &ct.components {
        t.append_point(b"R", &component.r);
        t.append_point(b"c", &component.c);
        match &component.y {
            Some(y) => t.append_point(b"Y", y),
            None => t.append_bytes(b"Y", b"bottom"),
        }
    }
    for a in &proof.announcements {
        t.append_point(b"announcement", a);
    }
    let challenge = t.challenge_scalar(b"challenge");
    let basepoint = curve25519_dalek::constants::RISTRETTO_BASEPOINT_POINT;
    for ((component, a), u) in ct
        .components
        .iter()
        .zip(proof.announcements.iter())
        .zip(proof.responses.iter())
    {
        let lhs = naive_mul(u, &basepoint);
        let a_bytes = U256::from_le_bytes(&a.compress().to_bytes());
        let rhs = P.mul(&a_bytes, &naive_mul(&challenge, &component.r));
        assert_eq!(lhs, rhs, "honest proof must verify");
    }
}

fn main() {
    let args = parse_args();

    let base = U256([0x1234_5678_9abc_def0, 77, 3, 0x0fff_ffff_ffff]);
    let exp = U256([
        0x9e37_79b9_7f4a_7c15,
        0xbf58_476d_1ce4_e5b9,
        0x94d0_49bb_1331_11eb,
        0x2545_f491_4f6c_dd1d >> 2,
    ]);

    let pow_naive_us = time_us(args.iters, || pow_naive(&base, &exp));
    let pow_windowed_us = time_us(args.iters, || P.pow(&base, &exp));
    let table = PowTable::new(&P, &base);
    let pow_fixed_base_us = time_us(args.iters, || table.pow(&P, &exp));
    // The single multiplications are nanosecond-scale: time blocks of 1000
    // chained calls per sample so each sample is well above timer
    // resolution.
    let mul_fold_us = time_us(args.iters, || {
        let mut acc = base;
        for _ in 0..1000 {
            acc = P.mul(&acc, &exp);
        }
        acc
    }) / 1000.0;
    let mul_montgomery_us = time_us(args.iters, || {
        let mut acc = base;
        for _ in 0..1000 {
            acc = P.mont_mul(&acc, &exp);
        }
        acc
    }) / 1000.0;

    // EncProof: per-proof vs batch over BATCH submissions.
    let mut rng = StdRng::seed_from_u64(1);
    let kp = KeyPair::generate(&mut rng);
    let enc_items: Vec<_> = (0..BATCH)
        .map(|i| {
            let points = encode_message(format!("baseline {i}").as_bytes()).unwrap();
            let (ct, randomness) = encrypt_message(&kp.public, &points, &mut rng);
            let proof = prove_encryption(&kp.public, 0, &ct, &randomness, &mut rng).unwrap();
            (ct, proof)
        })
        .collect();
    let enc_refs: Vec<EncVerification<'_>> = enc_items
        .iter()
        .map(|(ct, proof)| EncVerification {
            pk: &kp.public,
            group_id: 0,
            ciphertext: ct,
            proof,
        })
        .collect();
    let enc_per_proof_us = time_us(args.iters, || {
        for (ct, proof) in &enc_items {
            verify_encryption(&kp.public, 0, ct, proof).unwrap();
        }
    });
    let enc_naive_us = time_us(args.iters, || {
        for (ct, proof) in &enc_items {
            verify_encryption_naive(&kp.public, 0, ct, proof);
        }
    });
    let enc_batch_us = time_us(args.iters, || verify_encryption_batch(&enc_refs).unwrap());

    // ReEncProof: per-proof vs batch over BATCH hops.
    let server = KeyPair::generate(&mut rng);
    let next = KeyPair::generate(&mut rng);
    let reenc_pairs: Vec<_> = (0..BATCH)
        .map(|i| {
            let points = encode_message(format!("hop {i}").as_bytes()).unwrap();
            let (input, _) = encrypt_message(&server.public, &points, &mut rng);
            let (output, witnesses) =
                reencrypt_message(&server.secret.0, Some(&next.public), &input, &mut rng);
            let stmt = ReEncStatement {
                peel_public: &server.public.0,
                next_pk: Some(&next.public),
                input: &input,
                output: &output,
            };
            let proof = prove_reencryption(&stmt, &witnesses, &mut rng).unwrap();
            (input, output, proof)
        })
        .collect();
    let statements: Vec<ReEncStatement<'_>> = reenc_pairs
        .iter()
        .map(|(input, output, _)| ReEncStatement {
            peel_public: &server.public.0,
            next_pk: Some(&next.public),
            input,
            output,
        })
        .collect();
    let proofs: Vec<_> = reenc_pairs.iter().map(|(_, _, p)| p.clone()).collect();
    let reenc_per_proof_us = time_us(args.iters, || {
        for (stmt, proof) in statements.iter().zip(proofs.iter()) {
            verify_reencryption(stmt, proof).unwrap();
        }
    });
    let reenc_batch_us = time_us(args.iters, || {
        verify_reencryption_batch(&statements, &proofs).unwrap()
    });

    // ShufProof: sequential per-proof verification vs one combined RLC check
    // over a SHUF_MEMBERS-link shuffle chain (distinct statements per link,
    // exactly what the group engine hands to `verify_shuffle_batch`).
    let group = KeyPair::generate(&mut rng);
    let initial: Vec<_> = (0..SHUF_MSGS)
        .map(|i| {
            let points = encode_message(format!("mix {i}").as_bytes()).unwrap();
            encrypt_message(&group.public, &points, &mut rng).0
        })
        .collect();
    let mut stages = vec![initial];
    let mut shuffle_proofs: Vec<ShuffleProof> = Vec::with_capacity(SHUF_MEMBERS);
    for _ in 0..SHUF_MEMBERS {
        let inputs = stages.last().unwrap();
        let (outputs, witness) = shuffle(&group.public, inputs, &mut rng).unwrap();
        shuffle_proofs
            .push(prove_shuffle(&group.public, inputs, &outputs, &witness, &mut rng).unwrap());
        stages.push(outputs);
    }
    let shuffle_items: Vec<ShuffleVerification<'_>> = shuffle_proofs
        .iter()
        .enumerate()
        .map(|(link, proof)| ShuffleVerification {
            pk: &group.public,
            inputs: &stages[link],
            outputs: &stages[link + 1],
            proof,
        })
        .collect();
    let shuffle_per_proof_us = time_us(args.iters, || {
        for item in &shuffle_items {
            verify_shuffle_sequential(item.pk, item.inputs, item.outputs, item.proof).unwrap();
        }
    }) / SHUF_MEMBERS as f64;
    let shuffle_batch_us =
        time_us(args.iters, || verify_shuffle_batch(&shuffle_items).unwrap()) / SHUF_MEMBERS as f64;

    let json = format!(
        "{{\n  \"batch_size\": {BATCH},\n  \"pow_naive_us\": {pow_naive_us:.2},\n  \
         \"pow_windowed_us\": {pow_windowed_us:.2},\n  \"pow_fixed_base_us\": {pow_fixed_base_us:.2},\n  \
         \"mul_fold_us\": {mul_fold_us:.4},\n  \"mul_montgomery_us\": {mul_montgomery_us:.4},\n  \
         \"enc_verify_naive_us\": {enc_naive_us:.2},\n  \
         \"enc_verify_per_proof_us\": {enc_per_proof_us:.2},\n  \"enc_verify_batch_us\": {enc_batch_us:.2},\n  \
         \"reenc_verify_per_proof_us\": {reenc_per_proof_us:.2},\n  \"reenc_verify_batch_us\": {reenc_batch_us:.2},\n  \
         \"shuffle_verify_per_proof_us\": {shuffle_per_proof_us:.2},\n  \
         \"shuffle_verify_batch_us\": {shuffle_batch_us:.2},\n  \
         \"windowed_speedup\": {:.2},\n  \"fixed_base_speedup\": {:.2},\n  \
         \"enc_batch_speedup_vs_naive\": {:.2},\n  \"enc_batch_speedup_vs_per_proof\": {:.2},\n  \
         \"reenc_batch_speedup\": {:.2},\n  \"shuffle_batch_speedup\": {:.2}\n}}\n",
        pow_naive_us / pow_windowed_us,
        pow_naive_us / pow_fixed_base_us,
        enc_naive_us / enc_batch_us,
        enc_per_proof_us / enc_batch_us,
        reenc_per_proof_us / reenc_batch_us,
        shuffle_per_proof_us / shuffle_batch_us,
    );
    print!("{json}");
    std::fs::write(&args.out, &json).expect("write baseline json");
    eprintln!("wrote {}", args.out);

    assert!(
        pow_naive_us / pow_fixed_base_us >= 3.0,
        "fixed-base exponentiation must be at least 3x over the naive ladder"
    );
    assert!(
        enc_naive_us / enc_batch_us >= 3.0,
        "batched EncProof verification must be at least 3x over the naive path"
    );
    assert!(
        shuffle_per_proof_us / shuffle_batch_us >= 3.0,
        "batched ShufProof verification must be at least 3x over the sequential verifier"
    );
}
