//! Reproduces Table 4: anytrust group setup latency vs group size.
fn main() {
    let sizes: &[usize] = if atom_bench::full_mode() {
        &[4, 8, 16, 32, 64]
    } else {
        &[4, 8, 16, 32]
    };
    atom_bench::print_table4(sizes);
}
