//! Renders the per-phase cost breakdown of a recorded fleet trace.
//!
//! Reads the Chrome trace-event JSON written by `throughput --trace` or
//! `atom-node --trace` (path overridable as the first argument, default
//! `trace.json`) and prints, per fleet process and fleet-wide, how the
//! recorded span time splits across the engine phases (`setup`, `intake`,
//! `mix`, `verify`, `exit`) — the textual companion to loading the same
//! file in Perfetto. Regenerate a trace with:
//!
//! ```text
//! cargo run --release -p atom-bench --bin throughput -- \
//!     --transport tcp --trace trace.json
//! ```
//!
//! The emitter writes one event per line (see `docs/observability.md`), so
//! this reader scans lines instead of parsing JSON — the same approach the
//! recorded bench baselines use under the no-op vendored `serde`.

use std::collections::BTreeMap;

/// One complete (`"ph":"X"`) event scanned from a trace line.
struct TraceEvent {
    phase: String,
    pid: u64,
    dur_us: u64,
}

/// The string following `"key":"` in `line`, up to the next quote. Good
/// enough for the emitter's own output, where phase names never contain
/// escapes.
fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pattern = format!("\"{key}\":\"");
    let at = line.find(&pattern)? + pattern.len();
    let rest = &line[at..];
    Some(&rest[..rest.find('"')?])
}

/// The unsigned number following `"key":` in `line`.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pattern = format!("\"{key}\":");
    let at = line.find(&pattern)? + pattern.len();
    let digits: String = line[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Every span event of the trace, in file order. Metadata (`"ph":"M"`)
/// lines and the array brackets are skipped; a malformed span line fails
/// loudly rather than being silently dropped.
fn scan_events(trace: &str) -> Vec<TraceEvent> {
    trace
        .lines()
        .filter(|line| line.contains("\"ph\":\"X\""))
        .map(|line| TraceEvent {
            phase: field_str(line, "name")
                .unwrap_or_else(|| panic!("span event without a name: {line}"))
                .to_string(),
            pid: field_u64(line, "pid")
                .unwrap_or_else(|| panic!("span event without a pid: {line}")),
            dur_us: field_u64(line, "dur")
                .unwrap_or_else(|| panic!("span event without a dur: {line}")),
        })
        .collect()
}

fn print_breakdown(events: &[TraceEvent]) {
    // (pid, phase) -> (spans, total µs); BTreeMap keeps the output stable.
    let mut per_process: BTreeMap<(u64, String), (u64, u64)> = BTreeMap::new();
    let mut fleet: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for event in events {
        let slot = per_process
            .entry((event.pid, event.phase.clone()))
            .or_default();
        slot.0 += 1;
        slot.1 += event.dur_us;
        let slot = fleet.entry(event.phase.clone()).or_default();
        slot.0 += 1;
        slot.1 += event.dur_us;
    }
    let fleet_total: u64 = fleet.values().map(|(_, us)| us).sum();

    println!(
        "fig_trace: {} span events across {} processes",
        events.len(),
        per_process
            .keys()
            .map(|(pid, _)| pid)
            .collect::<std::collections::BTreeSet<_>>()
            .len()
    );
    println!(
        "\n{:>8} {:<8} {:>7} {:>12} {:>7}",
        "process", "phase", "spans", "total_ms", "share"
    );
    for ((pid, phase), (spans, us)) in &per_process {
        let share = if fleet_total > 0 {
            *us as f64 / fleet_total as f64 * 100.0
        } else {
            0.0
        };
        println!(
            "{pid:>8} {phase:<8} {spans:>7} {:>12.3} {share:>6.1}%",
            *us as f64 / 1_000.0
        );
    }

    let peak = fleet.values().map(|(_, us)| *us).max().unwrap_or(0);
    if peak == 0 {
        return;
    }
    const WIDTH: f64 = 50.0;
    println!("\nfleet-wide phase cost (total recorded span time):");
    for (phase, (spans, us)) in &fleet {
        let bar = "#".repeat((*us as f64 / peak as f64 * WIDTH).round() as usize);
        let share = *us as f64 / fleet_total as f64 * 100.0;
        println!(
            "{phase:>8} | {bar:<52} {:>10.3} ms {share:>5.1}%  ({spans} spans)",
            *us as f64 / 1_000.0
        );
    }
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "trace.json".to_string());
    let trace = std::fs::read_to_string(&path).unwrap_or_else(|error| {
        panic!(
            "read {path}: {error} — record a trace with `cargo run --release -p atom-bench \
             --bin throughput -- --transport tcp --trace trace.json`"
        )
    });
    let events = scan_events(&trace);
    assert!(!events.is_empty(), "{path} holds no span events");
    print_breakdown(&events);
}
