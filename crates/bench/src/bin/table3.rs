//! Reproduces Table 3: cryptographic primitive latencies.
fn main() {
    let batch = if atom_bench::full_mode() { 1024 } else { 256 };
    atom_bench::print_table3(batch);
}
