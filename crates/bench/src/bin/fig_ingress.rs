//! Renders the recorded ingress baseline — the concurrent client swarm's
//! admission throughput and latency through the event-driven ingress
//! tier, the socket-vs-materialized equivalence verdict, and the flood
//! phase's shed accounting.
//!
//! Reads `BENCH_ingress.json` (path overridable as the first argument).
//! Regenerate the baseline with:
//!
//! ```text
//! cargo run --release -p atom-bench --bin ingress -- \
//!     --clients 1200 --out BENCH_ingress.json
//! ```
//!
//! Schema and units: `docs/benchmarks.md`.

use atom_bench::ingress::{print_fig_ingress, IngressBaseline};

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_ingress.json".to_string());
    let json = std::fs::read_to_string(&path).unwrap_or_else(|error| {
        panic!(
            "read {path}: {error} — regenerate with `cargo run --release -p atom-bench \
             --bin ingress -- --clients 1200 --out BENCH_ingress.json`"
        )
    });
    let baseline = IngressBaseline::parse(&json).unwrap_or_else(|error| panic!("{path}: {error}"));
    print_fig_ingress(&baseline);
}
