//! Reproduces Figure 7: speed-up vs number of cores.
fn main() {
    if atom_bench::full_mode() {
        atom_bench::print_fig7(8, 1024, &[4, 8, 16, 36]);
    } else {
        atom_bench::print_fig7(4, 256, &[1, 2, 4]);
    }
}
