//! Records `BENCH_ingress.json`: a swarm of concurrent real-socket
//! clients through the event-driven ingress tier — one ingress thread
//! multiplexing every connection — then the admitted submissions run as
//! an engine round and byte-compared against the materialized path, and
//! a flood phase past a tiny admission queue recording the shed
//! accounting.
//!
//! The headline configuration regenerates the committed baseline — over a
//! thousand concurrent connections on one thread:
//!
//! ```text
//! cargo run --release -p atom-bench --bin ingress -- \
//!     --clients 1200 --out BENCH_ingress.json
//! ```
//!
//! CI runs a small smoke (`--clients 120`) and gates on zero lost frames,
//! a positive admitted rate and an observed shed. Schema and units:
//! `docs/benchmarks.md`.
//!
//! Usage: `cargo run --release -p atom-bench --bin ingress --
//! [--clients N] [--groups G] [--iterations I] [--users U] [--window W]
//! [--chunk C] [--queue Q] [--flood F] [--flood-queue FQ] [--workers T]
//! [--seed X] [--out PATH]`

use atom_bench::ingress::{print_fig_ingress, run_ingress, IngressSweepSpec};

fn main() {
    let mut spec = IngressSweepSpec::default();
    let mut workers = 2;
    let mut out: Option<String> = None;
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut grab_str = |name: &str| -> String {
            iter.next()
                .unwrap_or_else(|| panic!("{name} needs an argument"))
        };
        let grab = |name: &str, value: String| -> u64 {
            value
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("{name} needs a numeric argument"))
        };
        match flag.as_str() {
            "--clients" => spec.clients = grab("--clients", grab_str("--clients")) as usize,
            "--groups" => spec.groups = grab("--groups", grab_str("--groups")) as usize,
            "--iterations" => {
                spec.iterations = grab("--iterations", grab_str("--iterations")) as usize
            }
            "--users" => spec.users = grab("--users", grab_str("--users")) as usize,
            "--window" => spec.window = grab("--window", grab_str("--window")) as usize,
            "--chunk" => spec.chunk = grab("--chunk", grab_str("--chunk")) as usize,
            "--queue" => spec.queue_capacity = grab("--queue", grab_str("--queue")) as usize,
            "--flood" => spec.flood_offers = grab("--flood", grab_str("--flood")) as usize,
            "--flood-queue" => {
                spec.flood_queue_capacity =
                    grab("--flood-queue", grab_str("--flood-queue")) as usize
            }
            "--workers" => workers = grab("--workers", grab_str("--workers")) as usize,
            "--seed" => spec.seed = grab("--seed", grab_str("--seed")),
            "--out" => out = Some(grab_str("--out")),
            other => panic!("unknown flag {other}"),
        }
    }
    if spec.queue_capacity < spec.clients {
        spec.queue_capacity = spec.clients.next_power_of_two();
    }
    let baseline = run_ingress(&spec, workers).unwrap_or_else(|error| panic!("{error}"));
    print_fig_ingress(&baseline);
    if let Some(path) = &out {
        std::fs::write(path, baseline.to_json()).expect("write BENCH_ingress.json");
        println!("\nwrote {path}");
    }
}
