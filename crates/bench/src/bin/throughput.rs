//! Sustained-throughput benchmark of the parallel runtime.
//!
//! Runs an 8-group trap-variant deployment at 1/2/4/8 worker threads and
//! reports sustained messages/sec plus the speedup over the single-worker
//! configuration. Two compute models:
//!
//! * **Emulated server compute** (default): every group charges a fixed
//!   per-iteration compute delay, standing in for the per-group hardware of
//!   a real deployment (in the paper each group runs on its own machines).
//!   Engine scheduling, pipelining and message passing are measured for
//!   real; group compute overlaps across workers exactly as it would across
//!   machines, so the scaling shape is visible even on a single-core host.
//! * **`--real`**: no emulation — raw curve arithmetic on the host. The
//!   scaling then tracks the machine's physical core count.
//!
//! Two transports:
//!
//! * **`--transport mem`** (default): every group in this process over
//!   `InMemoryNetwork`.
//! * **`--transport tcp`**: the same deployment split across **OS processes
//!   on loopback** (coordinator + a [`netbench::ProcessFleet`] of members,
//!   groups round-robin; each member is this binary re-executed with the
//!   internal `--tcp-member` flag), exchanging frames through
//!   `TcpTransport`. Defaults to 2 processes.
//!
//! With `--sharded`, round setup runs *inside* the engine as a distributed
//! phase — each process derives only the DKGs of the groups it hosts (see
//! `atom_runtime::RoundDirectory::Sharded`) — and the sweep reports a
//! per-round setup-latency column next to the throughput numbers.
//!
//! **`--processes 1,2,3,4`** switches to the horizontal-scaling sweep: for
//! every (processes, workers-per-process) cell it runs the TCP deployment
//! twice — prebuilt directory and `--sharded` — and reports msgs/sec for
//! both plus the sharded run's setup latency. With `--out PATH` the sweep
//! is recorded as `BENCH_scale.json` (schema: `docs/benchmarks.md`), which
//! the `fig_scale` bin renders as the throughput-vs-processes curve.
//!
//! Without `--processes`, `--out PATH` keeps its historical meaning: run
//! both transports at 1/2/4 workers under thread parity and write
//! `BENCH_net.json` recording in-memory vs. TCP-loopback msgs/sec — the
//! transport's overhead, kept on record next to `BENCH_crypto.json`.
//!
//! **`--trace PATH`** enables `atom-obs` recording fleet-wide: every
//! process records spans and counters, members ship them to the
//! coordinator in telemetry frames at round end, and the merged fleet
//! trace is written to PATH as Chrome trace-event JSON (load it in
//! Perfetto / `chrome://tracing`, or render it with the `fig_trace` bin).
//! A human-readable span summary prints alongside, and `--metrics-out
//! PATH` additionally writes the merged counter snapshots as JSON.
//! Recording is observational: round outputs are byte-identical with and
//! without it (CI asserts this).
//!
//! Usage: `cargo run --release -p atom-bench --bin throughput --
//! [--real] [--rounds N] [--messages M] [--delay-ms D] [--transport mem|tcp]
//! [--processes 1,2,..] [--sharded] [--stall-timeout-ms S] [--out PATH]
//! [--trace PATH] [--metrics-out PATH]`

use std::process::Command;
use std::time::{Duration, Instant};

use atom_bench::netbench::{self, NetSpec, ProcessFleet};
use atom_bench::scale::{ScaleBaseline, ScaleCell};
use atom_runtime::{Engine, RoundReport};

const GROUPS: usize = 8;
const ITERATIONS: usize = 3;
const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];
const JSON_SWEEP: [usize; 3] = [1, 2, 4];
/// How long to wait for fleet readiness / teardown before declaring a
/// member lost. Generous: members compile nothing, but CI machines crawl.
const FLEET_TIMEOUT: Duration = Duration::from_secs(120);

#[derive(Clone, Copy, PartialEq, Eq)]
enum TransportKind {
    Mem,
    Tcp,
}

struct Args {
    real: bool,
    rounds: usize,
    messages: usize,
    delay: Duration,
    transport: TransportKind,
    sharded: bool,
    stall_timeout: Duration,
    /// Process counts of the horizontal-scaling sweep (empty = no sweep).
    processes: Vec<usize>,
    out: Option<String>,
    /// Write the merged fleet Chrome trace (trace-event JSON) here and
    /// enable span/counter recording in every process of the deployment.
    trace: Option<String>,
    /// Write the merged counter snapshots as JSON here (requires tracing).
    metrics_out: Option<String>,
    /// Internal (member mode): recording is on fleet-wide, but this process
    /// only ships its snapshots to the coordinator and writes no files.
    traced: bool,
    /// Internal: run as a member process of a TCP sweep.
    member: Option<MemberArgs>,
}

struct MemberArgs {
    index: usize,
    addrs: Vec<String>,
    workers: usize,
    seed: u64,
}

fn parse_args() -> Args {
    // 64 messages/round keeps submission-proof verification (the part the
    // batched crypto engine and chunked intake accelerate) on the measured
    // path instead of hiding it under the emulated compute delay.
    let mut args = Args {
        real: false,
        rounds: 2,
        messages: 64,
        delay: Duration::from_millis(10),
        transport: TransportKind::Mem,
        sharded: false,
        stall_timeout: Duration::from_secs(120),
        processes: Vec::new(),
        out: None,
        trace: None,
        metrics_out: None,
        traced: false,
        member: None,
    };
    let mut member = MemberArgs {
        index: 0,
        addrs: Vec::new(),
        workers: 1,
        seed: 0xBE_AC0,
    };
    let mut is_member = false;
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut grab_str = |name: &str| -> String {
            iter.next()
                .unwrap_or_else(|| panic!("{name} needs an argument"))
        };
        let grab = |name: &str, value: String| -> u64 {
            value
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("{name} needs a numeric argument"))
        };
        match flag.as_str() {
            "--real" => args.real = true,
            "--rounds" => args.rounds = grab("--rounds", grab_str("--rounds")) as usize,
            "--messages" => args.messages = grab("--messages", grab_str("--messages")) as usize,
            "--delay-ms" => {
                args.delay = Duration::from_millis(grab("--delay-ms", grab_str("--delay-ms")))
            }
            "--transport" => {
                args.transport = match grab_str("--transport").as_str() {
                    "mem" => TransportKind::Mem,
                    "tcp" => TransportKind::Tcp,
                    other => panic!("unknown transport {other} (expected mem or tcp)"),
                }
            }
            "--processes" => {
                args.processes = grab_str("--processes")
                    .split(',')
                    .map(|count| {
                        count
                            .trim()
                            .parse::<usize>()
                            .unwrap_or_else(|_| panic!("--processes wants counts, got {count}"))
                    })
                    .collect();
                assert!(
                    args.processes.iter().all(|&count| count >= 1),
                    "--processes counts must be >= 1"
                );
            }
            "--sharded" => args.sharded = true,
            "--stall-timeout-ms" => {
                args.stall_timeout = Duration::from_millis(grab(
                    "--stall-timeout-ms",
                    grab_str("--stall-timeout-ms"),
                ))
            }
            "--out" => args.out = Some(grab_str("--out")),
            "--trace" => args.trace = Some(grab_str("--trace")),
            "--metrics-out" => args.metrics_out = Some(grab_str("--metrics-out")),
            "--traced" => args.traced = true,
            "--tcp-member" => is_member = true,
            "--index" => member.index = grab("--index", grab_str("--index")) as usize,
            "--addrs" => {
                member.addrs = grab_str("--addrs").split(',').map(str::to_string).collect()
            }
            "--workers" => member.workers = grab("--workers", grab_str("--workers")) as usize,
            "--seed" => member.seed = grab("--seed", grab_str("--seed")),
            other => panic!("unknown flag {other}"),
        }
    }
    if is_member {
        args.member = Some(member);
    }
    args
}

fn spec(args: &Args, seed: u64) -> NetSpec {
    NetSpec {
        groups: GROUPS,
        rounds: args.rounds,
        messages: args.messages,
        iterations: ITERATIONS,
        seed,
        delay: if args.real {
            Duration::ZERO
        } else {
            args.delay
        },
        sharded: args.sharded,
        stall_timeout: args.stall_timeout,
        trace: args.trace.is_some() || args.traced,
        honest: 1,
        ..NetSpec::default()
    }
}

/// One in-memory run; returns (wall, delivered, max per-round setup
/// latency). Under `NetSpec::sharded` the jobs derive their directory
/// inside the engine (single-process sharding: every group is hosted
/// here), so the setup column measures the same code path the TCP mode
/// distributes.
fn run_memory(spec: &NetSpec, workers: usize) -> (Duration, usize, Duration, Vec<RoundReport>) {
    use atom_runtime::EngineOptions;
    if spec.trace {
        // The harness process persists across sweep cells while round
        // numbers repeat, so each traced run starts from a clean recorder.
        atom_obs::reset();
        atom_obs::set_process(0);
        atom_obs::set_enabled(true);
    }
    let jobs = if spec.sharded {
        netbench::build_sharded_jobs(spec, true)
    } else {
        netbench::build_jobs(spec)
    };
    let mut options = EngineOptions::with_workers(workers);
    if !spec.delay.is_zero() {
        options.stragglers = (0..spec.groups).map(|gid| (gid, spec.delay)).collect();
    }
    let engine = Engine::new(options);
    let start = Instant::now();
    let reports = engine.run_rounds(jobs);
    let wall = start.elapsed();
    let reports: Vec<_> = reports.into_iter().map(|r| r.expect("round")).collect();
    let delivered: usize = reports.iter().map(|r| r.output.plaintexts.len()).sum();
    let setup = reports
        .iter()
        .map(|r| r.setup_latency)
        .max()
        .unwrap_or_default();
    (wall, delivered, setup, reports)
}

/// The command line of the `--tcp-member` child hosting process `index`.
fn member_command(spec: &NetSpec, addrs: &[String], index: usize, workers: usize) -> Command {
    let mut command = Command::new(std::env::current_exe().expect("own binary path"));
    command
        .arg("--tcp-member")
        .arg("--index")
        .arg(index.to_string())
        .arg("--addrs")
        .arg(addrs.join(","))
        .arg("--workers")
        .arg(workers.to_string())
        .arg("--seed")
        .arg(spec.seed.to_string())
        .arg("--rounds")
        .arg(spec.rounds.to_string())
        .arg("--messages")
        .arg(spec.messages.to_string())
        .arg("--delay-ms")
        .arg(spec.delay.as_millis().to_string())
        .arg("--stall-timeout-ms")
        .arg(spec.stall_timeout.as_millis().to_string());
    if spec.sharded {
        command.arg("--sharded");
    }
    if spec.trace {
        command.arg("--traced");
    }
    command
}

/// One TCP-loopback run split across `processes` OS processes: this
/// process coordinates, a [`ProcessFleet`] of freshly spawned children
/// hosts the rest of the groups (with `processes == 1`, nobody else).
/// Returns (wall, delivered, max setup latency). The timed region covers
/// only the engine run — job derivation, binds and the connect retry loop
/// happen before the clock starts on every side (each member signals
/// readiness over its stdout) — mirroring `run_memory`, which also derives
/// jobs untimed. What remains in the TCP column is the genuine transport
/// cost: frame encode/decode, socket hops, the process split.
///
/// A member that dies fails the run loudly — the engine converts the lost
/// peer into per-round errors, and the fleet kills and reaps every child
/// on all exit paths — never a hang, never an orphan.
fn run_tcp(
    spec: &NetSpec,
    processes: usize,
    workers: usize,
) -> (Duration, usize, Duration, Vec<RoundReport>) {
    assert!(processes >= 1, "at least the coordinator process");
    if spec.trace {
        // Members are fresh processes, but this coordinator process runs
        // every cell of a sweep with repeating round numbers: reset so the
        // merged trace of each run covers only that run.
        atom_obs::reset();
    }
    let addrs = netbench::free_addrs(processes);
    let commands = (1..processes)
        .map(|index| member_command(spec, &addrs, index, workers))
        .collect();
    let mut fleet = ProcessFleet::spawn(commands);
    // Coordinator setup overlaps the members'; member listeners may come up
    // after this bind, but Process::start retries connects, so start order
    // does not matter.
    let process = netbench::Process::start(spec, addrs, 0, workers);
    fleet
        .await_ready(FLEET_TIMEOUT)
        .unwrap_or_else(|error| panic!("fleet readiness: {error}"));
    let start = Instant::now();
    let results = process.try_run();
    let wall = start.elapsed();
    let reports: Vec<_> = match results.into_iter().collect::<Result<Vec<_>, _>>() {
        Ok(reports) => reports,
        Err(error) => {
            fleet.kill_all();
            panic!("tcp run failed: {error:?}");
        }
    };
    let delivered: usize = reports.iter().map(|r| r.output.plaintexts.len()).sum();
    let setup = reports
        .iter()
        .map(|r| r.setup_latency)
        .max()
        .unwrap_or_default();
    fleet
        .finish(FLEET_TIMEOUT)
        .unwrap_or_else(|error| panic!("fleet teardown: {error}"));
    (wall, delivered, setup, reports)
}

/// Appends every per-round fleet snapshot of `reports` to `sink` — the
/// accumulator behind `--trace` / `--metrics-out`.
fn collect_telemetry(reports: &[RoundReport], sink: &mut Vec<atom_obs::Snapshot>) {
    for report in reports {
        sink.extend(report.telemetry.iter().cloned());
    }
}

fn print_sweep(args: &Args, telemetry: &mut Vec<atom_obs::Snapshot>) {
    let spec = spec(args, 0xBE_AC0);
    let total_messages = args.rounds * args.messages;
    println!(
        "throughput: {GROUPS}-group trap deployment, {} rounds x {} messages, {}, {} transport",
        args.rounds,
        args.messages,
        if args.real {
            "real host compute".to_string()
        } else {
            format!("emulated {:?}/iteration group compute", args.delay)
        },
        match args.transport {
            TransportKind::Mem => "in-memory".to_string(),
            TransportKind::Tcp => "tcp-loopback (2 processes)".to_string(),
        }
    );
    println!(
        "{:>8} {:>10} {:>12} {:>9} {:>11}",
        "workers", "wall", "msgs/sec", "speedup", "setup"
    );

    let mut baseline: Option<f64> = None;
    for workers in WORKER_SWEEP {
        let (wall, delivered, setup, reports) = match args.transport {
            TransportKind::Mem => run_memory(&spec, workers),
            TransportKind::Tcp => run_tcp(&spec, 2, workers),
        };
        collect_telemetry(&reports, telemetry);
        assert_eq!(delivered, total_messages, "no message may be lost");
        let rate = delivered as f64 / wall.as_secs_f64();
        let speedup = rate / *baseline.get_or_insert(rate);
        println!(
            "{workers:>8} {:>10.2?} {rate:>12.1} {speedup:>8.2}x {:>11.2?}",
            wall, setup
        );
    }
}

/// The horizontal-scaling sweep: every process count of `--processes`
/// crossed with 1/2/4 workers per process, each cell measured over TCP
/// loopback twice — prebuilt directory and `--sharded` — so the recorded
/// baseline carries both curves plus the sharded setup latency. This is
/// the measured form of the paper's throughput-vs-servers figure; real
/// multi-machine numbers are the same engine with `--addrs` pointed at
/// real NICs (see `docs/operations.md`).
fn run_scale_sweep(args: &Args, telemetry: &mut Vec<atom_obs::Snapshot>) -> ScaleBaseline {
    let total_messages = args.rounds * args.messages;
    println!(
        "scale sweep: {GROUPS}-group trap deployment, {} rounds x {} messages, \
         processes {:?} x workers {JSON_SWEEP:?}",
        args.rounds, args.messages, args.processes
    );
    println!(
        "{:>10} {:>9} {:>12} {:>14} {:>10}",
        "processes", "workers", "msgs/sec", "sharded msgs/s", "setup"
    );
    let mut cells = Vec::new();
    for &processes in &args.processes {
        for workers in JSON_SWEEP {
            let mut normal = spec(args, 0xBE_AC0);
            normal.sharded = false;
            let (wall, delivered, _, reports) = run_tcp(&normal, processes, workers);
            assert_eq!(delivered, total_messages, "no message may be lost");
            let rate = delivered as f64 / wall.as_secs_f64();
            collect_telemetry(&reports, telemetry);

            let mut sharded = spec(args, 0xBE_AC0);
            sharded.sharded = true;
            let (sharded_wall, sharded_delivered, setup, sharded_reports) =
                run_tcp(&sharded, processes, workers);
            assert_eq!(sharded_delivered, total_messages, "no message may be lost");
            let sharded_rate = sharded_delivered as f64 / sharded_wall.as_secs_f64();
            collect_telemetry(&sharded_reports, telemetry);

            // Per-phase medians come from both instrumented runs of this
            // cell — the sharded one is the only one that records `setup`
            // spans (all zeros when the sweep runs untraced).
            let cell_snaps: Vec<atom_obs::Snapshot> = reports
                .iter()
                .chain(sharded_reports.iter())
                .flat_map(|report| report.telemetry.iter().cloned())
                .collect();

            let setup_ms = setup.as_secs_f64() * 1e3;
            println!(
                "{processes:>10} {workers:>9} {rate:>12.1} {sharded_rate:>14.1} {setup_ms:>7.1} ms"
            );
            cells.push(ScaleCell {
                processes,
                workers_per_process: workers,
                msgs_per_sec: rate,
                sharded_msgs_per_sec: sharded_rate,
                setup_ms,
                setup_p50_ms: atom_obs::phase_median_ms(&cell_snaps, "setup"),
                intake_p50_ms: atom_obs::phase_median_ms(&cell_snaps, "intake"),
                mix_p50_ms: atom_obs::phase_median_ms(&cell_snaps, "mix"),
                verify_p50_ms: atom_obs::phase_median_ms(&cell_snaps, "verify"),
            });
        }
    }
    ScaleBaseline {
        groups: GROUPS,
        rounds: args.rounds,
        messages: args.messages,
        iterations: ITERATIONS,
        delay_ms: if args.real {
            0
        } else {
            args.delay.as_millis() as u64
        },
        cells,
    }
}

/// Runs both transports at 1/2/4 workers-per-process and writes
/// `BENCH_net.json`. Thread parity: the TCP run spreads the deployment
/// over 2 processes of `workers` engine threads each, so the in-memory
/// run gets the combined `2 * workers` threads — both sides spend the
/// same compute, and the recorded gap is the transport's genuine cost
/// (frame encode/decode, socket hops, the process split).
fn write_net_baseline(args: &Args, path: &str, telemetry: &mut Vec<atom_obs::Snapshot>) {
    let spec = spec(args, 0xBE_AC0);
    let total_messages = args.rounds * args.messages;
    let mut rows = Vec::new();
    println!(
        "net baseline: {GROUPS}-group trap deployment, {} rounds x {} messages",
        args.rounds, args.messages
    );
    println!(
        "{:>8} {:>14} {:>14} {:>10}",
        "workers", "mem msgs/s", "tcp msgs/s", "overhead"
    );
    for workers in JSON_SWEEP {
        let (mem_wall, mem_delivered, _, mem_reports) = run_memory(&spec, 2 * workers);
        collect_telemetry(&mem_reports, telemetry);
        let (tcp_wall, tcp_delivered, tcp_setup, tcp_reports) = run_tcp(&spec, 2, workers);
        collect_telemetry(&tcp_reports, telemetry);
        assert_eq!(mem_delivered, total_messages);
        assert_eq!(tcp_delivered, total_messages);
        let mem_rate = mem_delivered as f64 / mem_wall.as_secs_f64();
        let tcp_rate = tcp_delivered as f64 / tcp_wall.as_secs_f64();
        let overhead = (mem_rate / tcp_rate - 1.0) * 100.0;
        let setup_ms = tcp_setup.as_secs_f64() * 1e3;
        println!("{workers:>8} {mem_rate:>14.1} {tcp_rate:>14.1} {overhead:>9.1}%");
        rows.push(format!(
            "    {{\"workers_per_process\": {workers}, \"in_memory_msgs_per_sec\": {mem_rate:.1}, \
             \"tcp_msgs_per_sec\": {tcp_rate:.1}, \"tcp_overhead_pct\": {overhead:.1}, \
             \"tcp_setup_ms\": {setup_ms:.1}}}"
        ));
    }
    let json = format!(
        "{{\n  \"groups\": {GROUPS},\n  \"rounds\": {},\n  \"messages\": {},\n  \
         \"iterations\": {ITERATIONS},\n  \"delay_ms\": {},\n  \"tcp_processes\": 2,\n  \
         \"sharded_setup\": {},\n  \
         \"thread_parity\": \"in-memory runs 2x workers_per_process\",\n  \
         \"sweep\": [\n{}\n  ]\n}}\n",
        args.rounds,
        args.messages,
        spec.delay.as_millis(),
        args.sharded,
        rows.join(",\n")
    );
    std::fs::write(path, &json).expect("write BENCH_net.json");
    println!("wrote {path}");
}

/// Writes the `--trace` / `--metrics-out` artifacts from the accumulated
/// fleet snapshots and prints the human span summary.
fn write_telemetry(args: &Args, telemetry: &[atom_obs::Snapshot]) {
    if let Some(path) = &args.trace {
        std::fs::write(path, atom_obs::chrome_trace_json(telemetry))
            .expect("write fleet trace JSON");
        println!("wrote {path} ({} snapshots)", telemetry.len());
        print!("{}", atom_obs::text_summary(telemetry));
    }
    if let Some(path) = &args.metrics_out {
        assert!(
            args.trace.is_some(),
            "--metrics-out needs --trace (recording is off otherwise)"
        );
        std::fs::write(path, atom_obs::metrics_json(telemetry)).expect("write metrics JSON");
        println!("wrote {path}");
    }
}

fn main() {
    let args = parse_args();
    if let Some(member) = &args.member {
        // Internal mode: one member process of a TCP sweep. Setup runs
        // before the readiness signal so the parent's timed region starts
        // with both engines ready.
        let spec = spec(&args, member.seed);
        let process =
            netbench::Process::start(&spec, member.addrs.clone(), member.index, member.workers);
        println!("{}", netbench::READY_LINE);
        use std::io::Write;
        std::io::stdout().flush().expect("flush readiness signal");
        process.run();
        return;
    }
    let mut telemetry: Vec<atom_obs::Snapshot> = Vec::new();
    if !args.processes.is_empty() {
        assert!(
            args.transport == TransportKind::Tcp,
            "--processes sweeps OS processes; add --transport tcp"
        );
        let baseline = run_scale_sweep(&args, &mut telemetry);
        if let Some(path) = &args.out {
            std::fs::write(path, baseline.to_json()).expect("write BENCH_scale.json");
            println!("wrote {path}");
        }
        write_telemetry(&args, &telemetry);
        return;
    }
    match &args.out {
        Some(path) => write_net_baseline(&args, path, &mut telemetry),
        None => print_sweep(&args, &mut telemetry),
    }
    write_telemetry(&args, &telemetry);
}
