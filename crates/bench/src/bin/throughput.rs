//! Sustained-throughput benchmark of the parallel runtime.
//!
//! Runs an 8-group trap-variant deployment at 1/2/4/8 worker threads and
//! reports sustained messages/sec plus the speedup over the single-worker
//! configuration. Two compute models:
//!
//! * **Emulated server compute** (default): every group charges a fixed
//!   per-iteration compute delay, standing in for the per-group hardware of
//!   a real deployment (in the paper each group runs on its own machines).
//!   Engine scheduling, pipelining and message passing are measured for
//!   real; group compute overlaps across workers exactly as it would across
//!   machines, so the scaling shape is visible even on a single-core host.
//! * **`--real`**: no emulation — raw curve arithmetic on the host. The
//!   scaling then tracks the machine's physical core count.
//!
//! Usage: `cargo run --release -p atom-bench --bin throughput --
//! [--real] [--rounds N] [--messages M] [--delay-ms D]`

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use atom_core::config::{AtomConfig, Defense};
use atom_core::directory::setup_round;
use atom_core::message::make_trap_submission;
use atom_runtime::{Engine, EngineOptions, RoundJob, RoundSubmissions};

const GROUPS: usize = 8;
const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

struct Args {
    real: bool,
    rounds: usize,
    messages: usize,
    delay: Duration,
}

fn parse_args() -> Args {
    // 64 messages/round keeps submission-proof verification (the part the
    // batched crypto engine and chunked intake accelerate) on the measured
    // path instead of hiding it under the emulated compute delay.
    let mut args = Args {
        real: false,
        rounds: 2,
        messages: 64,
        delay: Duration::from_millis(10),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut grab = |name: &str| {
            iter.next()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| panic!("{name} needs a numeric argument"))
        };
        match flag.as_str() {
            "--real" => args.real = true,
            "--rounds" => args.rounds = grab("--rounds") as usize,
            "--messages" => args.messages = grab("--messages") as usize,
            "--delay-ms" => args.delay = Duration::from_millis(grab("--delay-ms")),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn build_jobs(rounds: usize, messages: usize) -> Vec<RoundJob> {
    let mut rng = StdRng::seed_from_u64(0xBE_AC0);
    let mut jobs = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let mut config = AtomConfig::test_default();
        config.defense = Defense::Trap;
        config.num_groups = GROUPS;
        config.num_servers = GROUPS * 3;
        config.iterations = 3;
        config.message_len = 32;
        config.round = round as u64;
        let setup = setup_round(&config, &mut rng).expect("setup");
        let submissions: Vec<_> = (0..messages)
            .map(|i| {
                let gid = i % GROUPS;
                make_trap_submission(
                    gid,
                    &setup.groups[gid].public_key,
                    &setup.trustees.public_key,
                    config.round,
                    format!("r{round} m{i}").as_bytes(),
                    config.message_len,
                    &mut rng,
                )
                .expect("submission")
                .0
            })
            .collect();
        jobs.push(RoundJob::new(
            setup,
            RoundSubmissions::Trap(submissions),
            round as u64,
        ));
    }
    jobs
}

fn main() {
    let args = parse_args();
    let jobs = build_jobs(args.rounds, args.messages);
    let total_messages = args.rounds * args.messages;

    println!(
        "throughput: {GROUPS}-group trap deployment, {} rounds x {} messages, {}",
        args.rounds,
        args.messages,
        if args.real {
            "real host compute".to_string()
        } else {
            format!("emulated {:?}/iteration group compute", args.delay)
        }
    );
    println!(
        "{:>8} {:>10} {:>12} {:>9}",
        "workers", "wall", "msgs/sec", "speedup"
    );

    let mut baseline: Option<f64> = None;
    for workers in WORKER_SWEEP {
        let mut options = EngineOptions::with_workers(workers);
        if !args.real {
            options.stragglers = (0..GROUPS).map(|gid| (gid, args.delay)).collect();
        }
        let engine = Engine::new(options);

        let start = Instant::now();
        let reports = engine.run_rounds(jobs.clone());
        let wall = start.elapsed();

        let delivered: usize = reports
            .iter()
            .map(|r| r.as_ref().expect("round").output.plaintexts.len())
            .sum();
        assert_eq!(delivered, total_messages, "no message may be lost");

        let rate = delivered as f64 / wall.as_secs_f64();
        let speedup = rate / *baseline.get_or_insert(rate);
        println!("{workers:>8} {:>10.2?} {rate:>12.1} {speedup:>8.2}x", wall);
    }
}
