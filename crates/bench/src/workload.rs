//! The `BENCH_workload.json` baseline: deterministic traffic models pulled
//! through the engine's streaming intake, plus the adversary scenario
//! suite's verdicts.
//!
//! Two kinds of rows are recorded. **Pattern rows** drive the
//! [`atom_workload`] generators — Zipf microblog fan-in shaped by a
//! diurnal curve, dialing bursts, trap and NIZK variants — through a
//! bounded [intake window](atom_runtime::EngineOptions::intake_window), so
//! a million-submission round is generated, verified and mixed without
//! ever materializing the offered load; each row records throughput and
//! the peak number of in-flight intake submissions (the bounded-memory
//! evidence). **Scenario rows** record the adversary suite's verdicts —
//! submission flood vs the intake cap, a slow-loris member vs the round
//! clock, equivocating setup frames — together with the control-traffic
//! throughput that proves the defense does not cost liveness.
//!
//! The `workload` bin emits the file ([`WorkloadBaseline::to_json`]); the
//! `fig_workload` bin reads it back ([`WorkloadBaseline::parse`]) and
//! renders it. Emitter and parser live together so the round-trip is unit
//! tested — the offline build vendors a no-op `serde`, so the JSON is
//! written and scanned by hand, like [`crate::scale`].

use std::sync::Arc;
use std::time::Instant;

use atom_core::config::{AtomConfig, Defense};
use atom_core::directory::derive_setup;
use atom_runtime::scenarios::{self, ScenarioOptions};
use atom_runtime::{Engine, EngineOptions, RoundJob, RoundSubmissions};
use atom_workload::{
    dialing_burst_counts, DiurnalCurve, TrafficPattern, WorkloadSource, WorkloadSpec,
};

use crate::netbench::serialize_reports;
use crate::scale::field_num;

/// One traffic pattern pulled through the streaming intake.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadRow {
    /// Pattern name (`microblog_trap`, `microblog_nizk`, `dialing_trap`).
    pub name: String,
    /// User population the generator draws from.
    pub users: usize,
    /// Rounds the load was spread over (diurnal / burst shaping).
    pub rounds: usize,
    /// Total submissions offered across the rounds.
    pub submissions: usize,
    /// Delivered plaintexts (must equal `submissions` for a healthy run).
    pub delivered: usize,
    /// Intake window the run used (chunks in flight at once; 0 = all).
    pub window: usize,
    /// Submissions per intake chunk — at most `window × chunk` of the
    /// offered load is ever resident.
    pub chunk: usize,
    /// Peak in-flight intake submissions observed by the
    /// `engine.intake.peak_in_flight` gauge — the bounded-memory evidence.
    pub peak_in_flight: u64,
    /// Wall-clock of the full run, milliseconds.
    pub elapsed_ms: f64,
    /// Delivered messages per wall-clock second.
    pub msgs_per_sec: f64,
    /// 1 when the run was re-executed through the materialized intake path
    /// and the two report streams compared byte-identical; 0 when the
    /// equivalence check was skipped (large committed baselines).
    pub streaming_identical: u64,
}

/// One adversary scenario's outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioRow {
    /// Scenario name (`submission_flood`, `slow_loris`,
    /// `equivocating_setup`).
    pub name: String,
    /// The verdict string the harness extracted (abort reason or
    /// conviction), proving the round failed *for the right reason*.
    pub verdict: String,
    /// Submissions the adversary (or control run) offered.
    pub submitted: usize,
    /// Control-traffic messages delivered after the attack was contained.
    pub delivered: usize,
    /// Control-traffic throughput — the liveness floor.
    pub msgs_per_sec: f64,
}

/// Parameters of one workload sweep.
#[derive(Clone, Debug)]
pub struct WorkloadSweepSpec {
    /// Anytrust groups.
    pub groups: usize,
    /// Mixing iterations.
    pub iterations: usize,
    /// User population for the generators.
    pub users: usize,
    /// Rounds the diurnal / burst schedules spread load over.
    pub rounds: usize,
    /// Submissions of the headline `microblog_trap` row. The NIZK row runs
    /// a tenth of this (NIZK proofs are ~4× slower to make and verify) and
    /// the dialing row a quarter; each row records its actual size.
    pub submissions: usize,
    /// Intake window (chunks in flight at once).
    pub window: usize,
    /// Submissions per intake chunk. With the window this bounds intake
    /// memory: at most `window × chunk` submissions are ever resident.
    pub chunk: usize,
    /// Master seed; every row derives from it deterministically.
    pub seed: u64,
    /// Re-run every pattern through the materialized intake path and
    /// byte-compare. Doubles the work and materializes the full offered
    /// load — only for CI-sized runs.
    pub check_equivalence: bool,
}

impl Default for WorkloadSweepSpec {
    fn default() -> Self {
        Self {
            groups: 4,
            iterations: 2,
            users: 100_000,
            rounds: 4,
            submissions: 2_000,
            window: 8,
            chunk: 1_024,
            seed: 0xA70_10AD,
            check_equivalence: false,
        }
    }
}

/// The recorded workload baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadBaseline {
    /// Anytrust groups of every pattern run.
    pub groups: usize,
    /// Mixing iterations.
    pub iterations: usize,
    /// User population of the generators.
    pub users: usize,
    /// Master seed of the sweep.
    pub seed: u64,
    /// Pattern rows, in sweep order.
    pub rows: Vec<WorkloadRow>,
    /// Adversary scenario rows, in suite order.
    pub scenarios: Vec<ScenarioRow>,
}

/// The round-`r` config of a workload deployment: like the scenario
/// harness's but parameterized on the defense, so trap and NIZK rows run
/// the same topology.
pub fn workload_config(spec: &WorkloadSweepSpec, defense: Defense, round: u64) -> AtomConfig {
    let mut config = AtomConfig::test_default();
    config.defense = defense;
    config.num_groups = spec.groups;
    config.num_servers = (spec.groups * 2).max(config.group_size);
    config.iterations = spec.iterations;
    config.message_len = 32;
    config.round = round;
    config.beacon_seed = spec.seed ^ round;
    config
}

/// Runs the per-round sources of one pattern through the engine — streaming
/// intake bounded by `spec.window` — and measures the row. When
/// `spec.check_equivalence` is set the same jobs are re-run through the
/// materialized path and the report streams byte-compared.
fn run_pattern(
    spec: &WorkloadSweepSpec,
    workers: usize,
    name: &str,
    pattern: TrafficPattern,
    defense: Defense,
    counts: &[usize],
) -> Result<WorkloadRow, String> {
    let mut sources = Vec::with_capacity(counts.len());
    let mut setups = Vec::with_capacity(counts.len());
    let mut jobs = Vec::with_capacity(counts.len());
    for (round, &count) in counts.iter().enumerate() {
        let config = workload_config(spec, defense, round as u64);
        let setup = Arc::new(derive_setup(&config).map_err(|e| format!("derive setup: {e}"))?);
        let source = Arc::new(
            WorkloadSource::new(
                Arc::clone(&setup),
                WorkloadSpec {
                    pattern: pattern.clone(),
                    defense,
                    submissions: count,
                    seed: spec.seed ^ (round as u64).wrapping_mul(0x9E37),
                },
            )
            .map_err(|e| format!("workload source: {e}"))?,
        );
        jobs.push(RoundJob::new(
            setup.as_ref().clone(),
            RoundSubmissions::Stream(Arc::clone(&source) as _),
            spec.seed ^ round as u64,
        ));
        sources.push(source);
        setups.push(setup);
    }
    let total: usize = counts.iter().sum();

    let mut options = EngineOptions::with_workers(workers);
    options.intake_window = spec.window;
    options.intake_chunk = spec.chunk;
    let was_enabled = atom_obs::enabled();
    atom_obs::set_enabled(true);
    atom_obs::reset();
    let start = Instant::now();
    let reports = Engine::new(options)
        .run_rounds(jobs)
        .into_iter()
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| format!("pattern {name}: {e}"))?;
    let elapsed = start.elapsed();
    let peak_in_flight = atom_obs::gauge_peak("engine.intake.peak_in_flight").unwrap_or(0);
    atom_obs::set_enabled(was_enabled);

    let delivered: usize = reports.iter().map(|r| r.output.plaintexts.len()).sum();
    let streaming_identical = if spec.check_equivalence {
        let materialized: Vec<RoundJob> = sources
            .iter()
            .zip(&setups)
            .enumerate()
            .map(|(round, (source, setup))| {
                Ok(RoundJob::new(
                    setup.as_ref().clone(),
                    source
                        .materialize()
                        .map_err(|e| format!("materialize: {e}"))?,
                    spec.seed ^ round as u64,
                ))
            })
            .collect::<Result<_, String>>()?;
        let baseline = Engine::with_workers(workers)
            .run_rounds(materialized)
            .into_iter()
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| format!("materialized {name}: {e}"))?;
        if serialize_reports(&reports) != serialize_reports(&baseline) {
            return Err(format!(
                "pattern {name}: streaming and materialized intake diverged"
            ));
        }
        1
    } else {
        0
    };

    let secs = elapsed.as_secs_f64();
    Ok(WorkloadRow {
        name: name.to_string(),
        users: spec.users,
        rounds: counts.len(),
        submissions: total,
        delivered,
        window: spec.window,
        chunk: spec.chunk,
        peak_in_flight,
        elapsed_ms: secs * 1e3,
        msgs_per_sec: if secs > 0.0 {
            delivered as f64 / secs
        } else {
            f64::INFINITY
        },
        streaming_identical,
    })
}

/// Runs the full sweep: the three pattern rows, then the adversary
/// scenario suite.
pub fn run_workload(spec: &WorkloadSweepSpec, workers: usize) -> Result<WorkloadBaseline, String> {
    let zipf = TrafficPattern::ZipfMicroblog {
        users: spec.users,
        exponent: 1.1,
    };
    let dialing = TrafficPattern::Dialing { users: spec.users };

    // Diurnal shaping for the microblog rows; top-of-the-hour bursts for
    // dialing. Row sizes scale off the headline count (see the spec docs).
    let curve = DiurnalCurve::standard();
    let trap_counts = curve.round_counts(spec.rounds, spec.submissions);
    let nizk_counts = curve.round_counts(spec.rounds, (spec.submissions / 10).max(1));
    let dial_base = (spec.submissions / 4).max(1) / spec.rounds.max(1);
    let dial_counts = dialing_burst_counts(spec.rounds, dial_base.max(1), 3, 4);

    let rows = vec![
        run_pattern(
            spec,
            workers,
            "microblog_trap",
            zipf.clone(),
            Defense::Trap,
            &trap_counts,
        )?,
        run_pattern(
            spec,
            workers,
            "microblog_nizk",
            zipf,
            Defense::Nizk,
            &nizk_counts,
        )?,
        run_pattern(
            spec,
            workers,
            "dialing_trap",
            dialing,
            Defense::Trap,
            &dial_counts,
        )?,
    ];

    // The adversary suite runs at its own (small, fixed) sizes: these rows
    // record *verdicts* and the control-traffic liveness floor, not bulk
    // throughput.
    let mut options = ScenarioOptions::with_seed(spec.seed ^ 0xAD7E);
    options.workers = workers;
    let suite = [
        scenarios::submission_flood(3, 5_000, 6, &options).map_err(|e| format!("flood: {e}"))?,
        scenarios::slow_loris(
            3,
            4,
            std::time::Duration::from_millis(600),
            std::time::Duration::from_millis(150),
            &options,
        )
        .map_err(|e| format!("slow loris: {e}"))?,
        scenarios::equivocating_setup(3, 4, &options).map_err(|e| format!("equivocation: {e}"))?,
    ];
    let scenarios = suite
        .into_iter()
        .map(|report| ScenarioRow {
            name: report.scenario.to_string(),
            verdict: report.verdict.clone(),
            submitted: report.submitted,
            delivered: report.delivered,
            msgs_per_sec: report.msgs_per_sec(),
        })
        .collect();

    Ok(WorkloadBaseline {
        groups: spec.groups,
        iterations: spec.iterations,
        users: spec.users,
        seed: spec.seed,
        rows,
        scenarios,
    })
}

/// Escapes a string for the hand-rolled JSON (the verdicts can carry
/// quotes or backslashes from error formatting).
fn escape(text: &str) -> String {
    text.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// The first string following `"key":` in `text` (unescaping what
/// [`escape`] wrote).
fn field_str(text: &str, key: &str) -> Result<String, String> {
    let pattern = format!("\"{key}\":");
    let at = text
        .find(&pattern)
        .ok_or_else(|| format!("missing field {key}"))?;
    let rest = text[at + pattern.len()..].trim_start();
    let mut chars = rest.chars();
    if chars.next() != Some('"') {
        return Err(format!("field {key} is not a string"));
    }
    let mut out = String::new();
    let mut escaped = false;
    for c in chars {
        if escaped {
            out.push(match c {
                'n' => '\n',
                other => other,
            });
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            return Ok(out);
        } else {
            out.push(c);
        }
    }
    Err(format!("unterminated string for field {key}"))
}

impl WorkloadBaseline {
    /// The canonical `BENCH_workload.json` serialization (stable field
    /// order, readable diffs).
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|row| {
                format!(
                    "    {{\"name\": \"{}\", \"users\": {}, \"rounds\": {}, \
                     \"submissions\": {}, \"delivered\": {}, \"window\": {}, \
                     \"chunk\": {}, \"peak_in_flight\": {}, \"elapsed_ms\": {:.1}, \
                     \"msgs_per_sec\": {:.1}, \"streaming_identical\": {}}}",
                    escape(&row.name),
                    row.users,
                    row.rounds,
                    row.submissions,
                    row.delivered,
                    row.window,
                    row.chunk,
                    row.peak_in_flight,
                    row.elapsed_ms,
                    row.msgs_per_sec,
                    row.streaming_identical
                )
            })
            .collect();
        let scenarios: Vec<String> = self
            .scenarios
            .iter()
            .map(|row| {
                format!(
                    "    {{\"name\": \"{}\", \"verdict\": \"{}\", \"submitted\": {}, \
                     \"delivered\": {}, \"msgs_per_sec\": {:.1}}}",
                    escape(&row.name),
                    escape(&row.verdict),
                    row.submitted,
                    row.delivered,
                    row.msgs_per_sec
                )
            })
            .collect();
        format!(
            "{{\n  \"groups\": {},\n  \"iterations\": {},\n  \"users\": {},\n  \
             \"seed\": {},\n  \"patterns\": [\n{}\n  ],\n  \"scenarios\": [\n{}\n  ]\n}}\n",
            self.groups,
            self.iterations,
            self.users,
            self.seed,
            rows.join(",\n"),
            scenarios.join(",\n")
        )
    }

    /// Parses what [`WorkloadBaseline::to_json`] wrote. Tolerant of
    /// whitespace, intolerant of missing fields.
    pub fn parse(json: &str) -> Result<Self, String> {
        let patterns_at = json
            .find("\"patterns\"")
            .ok_or_else(|| "missing field patterns".to_string())?;
        let scenarios_at = json
            .find("\"scenarios\"")
            .ok_or_else(|| "missing field scenarios".to_string())?;
        if scenarios_at < patterns_at {
            return Err("scenarios must follow patterns".to_string());
        }
        let head = &json[..patterns_at];
        let patterns_src = &json[patterns_at..scenarios_at];
        let scenarios_src = &json[scenarios_at..];

        let mut rows = Vec::new();
        for body in array_objects(patterns_src)? {
            rows.push(WorkloadRow {
                name: field_str(body, "name")?,
                users: field_num(body, "users")? as usize,
                rounds: field_num(body, "rounds")? as usize,
                submissions: field_num(body, "submissions")? as usize,
                delivered: field_num(body, "delivered")? as usize,
                window: field_num(body, "window")? as usize,
                chunk: field_num(body, "chunk")? as usize,
                peak_in_flight: field_num(body, "peak_in_flight")? as u64,
                elapsed_ms: field_num(body, "elapsed_ms")?,
                msgs_per_sec: field_num(body, "msgs_per_sec")?,
                streaming_identical: field_num(body, "streaming_identical")? as u64,
            });
        }
        if rows.is_empty() {
            return Err("patterns array holds no rows".to_string());
        }
        let mut scenario_rows = Vec::new();
        for body in array_objects(scenarios_src)? {
            scenario_rows.push(ScenarioRow {
                name: field_str(body, "name")?,
                verdict: field_str(body, "verdict")?,
                submitted: field_num(body, "submitted")? as usize,
                delivered: field_num(body, "delivered")? as usize,
                msgs_per_sec: field_num(body, "msgs_per_sec")?,
            });
        }
        if scenario_rows.is_empty() {
            return Err("scenarios array holds no rows".to_string());
        }
        Ok(Self {
            groups: field_num(head, "groups")? as usize,
            iterations: field_num(head, "iterations")? as usize,
            users: field_num(head, "users")? as usize,
            seed: field_num(head, "seed")? as u64,
            rows,
            scenarios: scenario_rows,
        })
    }

    /// The pattern row of `name`, if recorded.
    pub fn row(&self, name: &str) -> Option<&WorkloadRow> {
        self.rows.iter().find(|row| row.name == name)
    }

    /// The scenario row of `name`, if recorded.
    pub fn scenario(&self, name: &str) -> Option<&ScenarioRow> {
        self.scenarios.iter().find(|row| row.name == name)
    }
}

/// The object bodies of the first JSON array in `text`.
fn array_objects(text: &str) -> Result<Vec<&str>, String> {
    let start = text
        .find('[')
        .ok_or_else(|| "expected an array".to_string())?;
    let end = text
        .rfind(']')
        .ok_or_else(|| "unterminated array".to_string())?;
    if end < start {
        return Err("unterminated array".to_string());
    }
    // Objects carry no nested braces, so splitting on '}' is safe here
    // (verdict strings are escaped and never contain a raw brace from
    // the error formats we record).
    Ok(text[start + 1..end]
        .split('}')
        .filter_map(|object| object.find('{').map(|at| &object[at + 1..]))
        .collect())
}

/// Renders the workload baseline: the pattern table (throughput and peak
/// intake residency), then the adversary suite's verdicts.
pub fn print_fig_workload(baseline: &WorkloadBaseline) {
    println!(
        "fig_workload: deterministic traffic models through streaming intake — \
         {} groups, {} iterations, {} users, seed {:#x}",
        baseline.groups, baseline.iterations, baseline.users, baseline.seed
    );
    println!(
        "{:<16} {:>7} {:>10} {:>10} {:>12} {:>10} {:>11} {:>10} {:>6}",
        "pattern",
        "rounds",
        "offered",
        "delivered",
        "window*chunk",
        "peak",
        "elapsed",
        "msgs/s",
        "ident"
    );
    for row in &baseline.rows {
        println!(
            "{:<16} {:>7} {:>10} {:>10} {:>12} {:>10} {:>8.1} ms {:>10.1} {:>6}",
            row.name,
            row.rounds,
            row.submissions,
            row.delivered,
            format!("{}x{}", row.window, row.chunk),
            row.peak_in_flight,
            row.elapsed_ms,
            row.msgs_per_sec,
            if row.streaming_identical == 1 {
                "yes"
            } else {
                "-"
            }
        );
    }
    println!("\nadversary suite (attack contained + control traffic flows):");
    for row in &baseline.scenarios {
        println!(
            "  {:<20} {:>8} offered, {:>6} control delivered at {:>8.1} msg/s",
            row.name, row.submitted, row.delivered, row.msgs_per_sec
        );
        println!("    verdict: {}", row.verdict);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WorkloadBaseline {
        WorkloadBaseline {
            groups: 4,
            iterations: 2,
            users: 1_000_000,
            seed: 0xA70,
            rows: vec![WorkloadRow {
                name: "microblog_trap".into(),
                users: 1_000_000,
                rounds: 4,
                submissions: 1_000_000,
                delivered: 1_000_000,
                window: 8,
                chunk: 1_024,
                peak_in_flight: 4_096,
                elapsed_ms: 123_456.7,
                msgs_per_sec: 8_100.2,
                streaming_identical: 0,
            }],
            scenarios: vec![ScenarioRow {
                name: "submission_flood".into(),
                verdict: "submission flood: round 1 offers 5000 \"submissions\"".into(),
                submitted: 5_000,
                delivered: 6,
                msgs_per_sec: 11.5,
            }],
        }
    }

    #[test]
    fn json_round_trips() {
        let baseline = sample();
        let parsed = WorkloadBaseline::parse(&baseline.to_json()).expect("parse own output");
        assert_eq!(parsed, baseline);
    }

    #[test]
    fn parse_rejects_truncated_files() {
        let json = sample().to_json();
        assert!(WorkloadBaseline::parse(&json[..json.len() / 2]).is_err());
        assert!(WorkloadBaseline::parse("{}").is_err());
        assert!(WorkloadBaseline::parse("{\"patterns\": [], \"scenarios\": []}").is_err());
    }

    #[test]
    fn verdict_strings_with_quotes_survive_the_round_trip() {
        let baseline = sample();
        let parsed = WorkloadBaseline::parse(&baseline.to_json()).unwrap();
        assert_eq!(
            parsed.scenario("submission_flood").unwrap().verdict,
            baseline.scenarios[0].verdict
        );
    }

    #[test]
    fn tiny_sweep_streams_byte_identically_and_contains_the_adversaries() {
        let spec = WorkloadSweepSpec {
            groups: 3,
            iterations: 2,
            users: 50,
            rounds: 2,
            submissions: 40,
            window: 2,
            chunk: 4,
            seed: 0x57AE,
            check_equivalence: true,
        };
        let baseline = run_workload(&spec, 2).expect("sweep completes");
        for row in &baseline.rows {
            assert_eq!(row.delivered, row.submissions, "{}", row.name);
            assert_eq!(row.streaming_identical, 1, "{}", row.name);
            assert!(row.peak_in_flight > 0, "{}", row.name);
            assert!(
                row.peak_in_flight <= (spec.window * spec.chunk) as u64,
                "{}: peak {} exceeds the window bound",
                row.name,
                row.peak_in_flight
            );
        }
        assert!(baseline
            .scenario("submission_flood")
            .unwrap()
            .verdict
            .contains("submission flood"));
        assert!(baseline
            .scenario("slow_loris")
            .unwrap()
            .verdict
            .contains("deadline"));
        assert!(baseline
            .scenario("equivocating_setup")
            .unwrap()
            .verdict
            .contains("conflicting setup frames"));
        // The serialization round-trips (the emitter rounds floats to one
        // decimal, so compare the canonical forms, not the live structs).
        let json = baseline.to_json();
        let parsed = WorkloadBaseline::parse(&json).unwrap();
        assert_eq!(parsed.to_json(), json);
    }
}
