//! The recorded baseline for the recovery experiment (`BENCH_recovery.json`).
//!
//! The `recovery` bin runs a fleet through a kill → evict → heal → rejoin
//! cycle (see [`crate::heal`]) and emits this file; the `fig_recovery` bin
//! reads it back and renders the healing timeline. As with the scaling
//! baseline, emitter and parser live together and round-trip under unit
//! test — the offline build vendors a no-op `serde`, so the JSON is written
//! and scanned by hand.

/// What one recovered fleet run measured: the deployment shape, the churn
/// history, and the two paper-facing numbers — detection-to-healed-round
/// latency and the healed rounds' throughput.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryBaseline {
    /// OS processes in the deployment (coordinator included).
    pub processes: usize,
    /// Anytrust groups.
    pub groups: usize,
    /// Rounds in the workload.
    pub rounds: usize,
    /// Submissions per round.
    pub messages: usize,
    /// Mixing iterations per round.
    pub iterations: usize,
    /// Rounds per batch (re-formation / readmission boundary spacing).
    pub batch: usize,
    /// Assumed honest members per group (`h`); `h − 1` losses heal by
    /// Lagrange reweighting, deeper losses via buddy escrow.
    pub honest: usize,
    /// Processes evicted over the run.
    pub evictions: usize,
    /// Processes readmitted after a restart.
    pub rejoins: usize,
    /// Batch attempts (plan/ack/go handshakes) the run took.
    pub epochs: usize,
    /// Fault detection → completion of the first round finished after
    /// detection, milliseconds: the recovery latency.
    pub detection_to_healed_ms: f64,
    /// Delivered messages per wall-clock second across the whole recovered
    /// run — churn, retries and healing included.
    pub msgs_per_sec: f64,
    /// Delivered messages per second counting only rounds completed after
    /// the first detection (the healed fleet's throughput).
    pub healed_msgs_per_sec: f64,
    /// Wall clock of the whole run, milliseconds.
    pub wall_ms: f64,
}

impl RecoveryBaseline {
    /// The canonical `BENCH_recovery.json` serialization (stable field
    /// order, readable diffs).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"processes\": {},\n  \"groups\": {},\n  \"rounds\": {},\n  \
             \"messages\": {},\n  \"iterations\": {},\n  \"batch\": {},\n  \
             \"honest\": {},\n  \"evictions\": {},\n  \"rejoins\": {},\n  \
             \"epochs\": {},\n  \"detection_to_healed_ms\": {:.1},\n  \
             \"msgs_per_sec\": {:.1},\n  \"healed_msgs_per_sec\": {:.1},\n  \
             \"wall_ms\": {:.1},\n  \"transport\": \"tcp-loopback\"\n}}\n",
            self.processes,
            self.groups,
            self.rounds,
            self.messages,
            self.iterations,
            self.batch,
            self.honest,
            self.evictions,
            self.rejoins,
            self.epochs,
            self.detection_to_healed_ms,
            self.msgs_per_sec,
            self.healed_msgs_per_sec,
            self.wall_ms,
        )
    }

    /// Parses what [`RecoveryBaseline::to_json`] wrote. Tolerant of
    /// whitespace, intolerant of missing fields.
    pub fn parse(json: &str) -> Result<Self, String> {
        Ok(Self {
            processes: field_num(json, "processes")? as usize,
            groups: field_num(json, "groups")? as usize,
            rounds: field_num(json, "rounds")? as usize,
            messages: field_num(json, "messages")? as usize,
            iterations: field_num(json, "iterations")? as usize,
            batch: field_num(json, "batch")? as usize,
            honest: field_num(json, "honest")? as usize,
            evictions: field_num(json, "evictions")? as usize,
            rejoins: field_num(json, "rejoins")? as usize,
            epochs: field_num(json, "epochs")? as usize,
            detection_to_healed_ms: field_num(json, "detection_to_healed_ms")?,
            msgs_per_sec: field_num(json, "msgs_per_sec")?,
            healed_msgs_per_sec: field_num(json, "healed_msgs_per_sec")?,
            wall_ms: field_num(json, "wall_ms")?,
        })
    }
}

/// The first number following `"key":` in `text`.
fn field_num(text: &str, key: &str) -> Result<f64, String> {
    let pattern = format!("\"{key}\":");
    let at = text
        .find(&pattern)
        .ok_or_else(|| format!("missing field {key}"))?;
    let rest = text[at + pattern.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end]
        .parse::<f64>()
        .map_err(|error| format!("field {key}: {error}"))
}

/// Renders the healing timeline from a recorded baseline: deployment
/// shape, churn history, and the latency/throughput of the healed fleet
/// next to the overall run.
pub fn print_fig_recovery(baseline: &RecoveryBaseline) {
    println!(
        "fig_recovery: eviction and rejoin under churn — {} processes, \
         {} groups, {} rounds x {} messages (batch {}, h = {})",
        baseline.processes,
        baseline.groups,
        baseline.rounds,
        baseline.messages,
        baseline.batch,
        baseline.honest
    );
    println!(
        "  churn: {} eviction(s), {} rejoin(s), {} epoch(s) to finish {} rounds",
        baseline.evictions, baseline.rejoins, baseline.epochs, baseline.rounds
    );
    println!(
        "  detection → first healed round: {:>8.1} ms",
        baseline.detection_to_healed_ms
    );
    println!("  {:>22} {:>12}", "", "msgs/sec");
    let widest = baseline.msgs_per_sec.max(baseline.healed_msgs_per_sec);
    for (label, value) in [
        ("whole run (w/ churn)", baseline.msgs_per_sec),
        ("healed rounds only", baseline.healed_msgs_per_sec),
    ] {
        let bar = if widest > 0.0 {
            "#".repeat(((value / widest) * 40.0).round() as usize)
        } else {
            String::new()
        };
        println!("  {label:>22} {value:>12.1} {bar}");
    }
    println!(
        "  wall clock: {:.1} ms — a fleet that heals keeps delivering; the \
         pre-recovery harness would have failed every round after the kill",
        baseline.wall_ms
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RecoveryBaseline {
        RecoveryBaseline {
            processes: 3,
            groups: 3,
            rounds: 6,
            messages: 12,
            iterations: 2,
            batch: 2,
            honest: 2,
            evictions: 1,
            rejoins: 1,
            epochs: 5,
            detection_to_healed_ms: 412.5,
            msgs_per_sec: 88.0,
            healed_msgs_per_sec: 120.5,
            wall_ms: 818.2,
        }
    }

    #[test]
    fn json_round_trips() {
        let baseline = sample();
        let parsed = RecoveryBaseline::parse(&baseline.to_json()).expect("parse own output");
        assert_eq!(parsed, baseline);
    }

    #[test]
    fn parse_rejects_truncated_files() {
        let json = sample().to_json();
        assert!(RecoveryBaseline::parse(&json[..json.len() / 3]).is_err());
        assert!(RecoveryBaseline::parse("{}").is_err());
    }
}
