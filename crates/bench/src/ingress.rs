//! The `BENCH_ingress.json` baseline: a [`ClientSwarm`] of real TCP
//! clients driven through the event-driven ingress tier.
//!
//! The swarm opens every connection *before* sending — thousands of
//! concurrent sockets multiplexed by the one ingress thread — then writes
//! each client's pre-encoded `submit` frame and scans non-blocking reads
//! for the acks, measuring per-client admission latency on the client
//! side (frame fully written → ack decoded). The admitted submissions are
//! drained into an [`IngressSource`](atom_runtime::IngressSource) and run
//! through an engine round, which is byte-compared against the same
//! workload materialized directly into a `RoundJob` — proving the socket
//! path adds admission control, not semantics. A second phase floods a
//! deliberately tiny admission queue and records the shed accounting
//! (`offered == admitted + shed`, observable via `atom-obs`).
//!
//! The `ingress` bin emits the file ([`IngressBaseline::to_json`]); the
//! `fig_ingress` bin reads it back ([`IngressBaseline::parse`]) and
//! renders it. Emitter and parser live together so the round-trip is unit
//! tested; the JSON is written and scanned by hand like [`crate::scale`]
//! (the offline build vendors a no-op `serde`).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use atom_core::config::{AtomConfig, Defense};
use atom_core::directory::derive_setup;
use atom_net::evloop::{CLIENT_HEADER_LEN, CLIENT_MAGIC, CLIENT_VERSION};
use atom_net::EvloopOptions;
use atom_runtime::wire::{self, Frame};
use atom_runtime::{
    Engine, EngineOptions, IngressOptions, IngressServer, RoundJob, RoundSubmissions,
};
use atom_workload::{TrafficPattern, WorkloadSource, WorkloadSpec};

use crate::netbench::serialize_reports;
use crate::scale::field_num;

/// Application tag every swarm submission carries.
pub const SWARM_APP: u16 = 1;

/// Parameters of one ingress benchmark run.
#[derive(Clone, Debug)]
pub struct IngressSweepSpec {
    /// Concurrent client connections (the headline runs ≥ 1,000; CI runs
    /// a small smoke).
    pub clients: usize,
    /// Anytrust groups of the round the admitted submissions feed.
    pub groups: usize,
    /// Mixing iterations of that round.
    pub iterations: usize,
    /// User population the workload generator draws authors from.
    pub users: usize,
    /// Engine intake window (chunks in flight at once).
    pub window: usize,
    /// Submissions per intake chunk.
    pub chunk: usize,
    /// Per-connection sustained rate (tokens/second) during the swarm.
    pub rate: f64,
    /// Admission-queue bound during the swarm (must hold every client).
    pub queue_capacity: usize,
    /// Submissions offered during the flood phase.
    pub flood_offers: usize,
    /// Admission-queue bound during the flood phase (deliberately tiny).
    pub flood_queue_capacity: usize,
    /// Master seed; the workload stream derives from it deterministically.
    pub seed: u64,
}

impl Default for IngressSweepSpec {
    fn default() -> Self {
        Self {
            clients: 1_200,
            groups: 3,
            iterations: 2,
            users: 10_000,
            window: 2,
            chunk: 64,
            rate: 10_000.0,
            queue_capacity: 1 << 12,
            flood_offers: 64,
            flood_queue_capacity: 16,
            seed: 0xA70C,
        }
    }
}

/// The swarm phase's measurements.
#[derive(Clone, Debug, PartialEq)]
pub struct SwarmRow {
    /// Clients that connected and sent one submission each.
    pub clients: usize,
    /// Submissions the server admitted.
    pub admitted: usize,
    /// Clients whose frame got no ack before the deadline (must be 0).
    pub lost_frames: usize,
    /// Peak concurrent connections the event loop observed.
    pub peak_connections: u64,
    /// Admitted submissions per wall-clock second of the swarm phase.
    pub accepted_per_sec: f64,
    /// Median client-side admission latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile client-side admission latency, milliseconds.
    pub p99_ms: f64,
    /// Wall-clock of the swarm phase, milliseconds.
    pub elapsed_ms: f64,
    /// Plaintexts the round delivered (must equal `admitted`).
    pub delivered: usize,
    /// Peak in-flight intake submissions during the round (bounded by
    /// `window × chunk`).
    pub peak_in_flight: u64,
    /// 1 when the socket-fed round byte-matched the materialized round.
    pub identical: u64,
}

/// The flood phase's shed accounting.
#[derive(Clone, Debug, PartialEq)]
pub struct FloodRow {
    /// Submissions offered past the tiny queue.
    pub offered: usize,
    /// Submissions the queue admitted (its capacity).
    pub admitted: usize,
    /// Submissions shed with retry hints (`offered − admitted`).
    pub shed: usize,
    /// The queue bound the flood ran against.
    pub queue_capacity: usize,
}

/// Everything `BENCH_ingress.json` records.
#[derive(Clone, Debug, PartialEq)]
pub struct IngressBaseline {
    /// Concurrent clients of the swarm phase.
    pub clients: usize,
    /// Anytrust groups of the verification round.
    pub groups: usize,
    /// Mixing iterations of that round.
    pub iterations: usize,
    /// Master seed of the run.
    pub seed: u64,
    /// Swarm measurements.
    pub swarm: SwarmRow,
    /// Flood shed accounting.
    pub flood: FloodRow,
}

fn ingress_config(spec: &IngressSweepSpec) -> AtomConfig {
    let mut config = AtomConfig::test_default();
    config.defense = Defense::Nizk;
    config.num_groups = spec.groups;
    config.num_servers = (spec.groups * 2).max(config.group_size);
    config.iterations = spec.iterations;
    config.message_len = 32;
    config.beacon_seed = spec.seed ^ 0xD1;
    config
}

/// One swarm client's in-flight state.
struct SwarmClient {
    stream: TcpStream,
    frame: Vec<u8>,
    written: usize,
    ack: Vec<u8>,
    sent_at: Option<Instant>,
    latency: Option<Duration>,
    shed: bool,
    dead: bool,
}

impl SwarmClient {
    fn done(&self) -> bool {
        self.dead || self.latency.is_some()
    }
}

/// A swarm of concurrent real-socket clients: every connection is opened
/// before the first frame is written, all frames then flow through
/// non-blocking scans from one driver thread, acks are decoded and timed
/// client-side.
pub struct ClientSwarm {
    clients: Vec<SwarmClient>,
}

impl ClientSwarm {
    /// Connects `frames.len()` clients to `addr` (blocking connects with
    /// a short retry, so a briefly full accept backlog doesn't fail the
    /// run), each holding one pre-encoded frame to send.
    pub fn connect(addr: std::net::SocketAddr, frames: Vec<Vec<u8>>) -> Result<Self, String> {
        let mut clients = Vec::with_capacity(frames.len());
        for (index, frame) in frames.into_iter().enumerate() {
            let mut attempt = 0;
            let stream = loop {
                match TcpStream::connect(addr) {
                    Ok(stream) => break stream,
                    Err(error) if attempt < 50 => {
                        attempt += 1;
                        std::thread::sleep(Duration::from_millis(2));
                        let _ = error;
                    }
                    Err(error) => return Err(format!("client {index} connect: {error}")),
                }
            };
            stream
                .set_nonblocking(true)
                .map_err(|error| format!("client {index} nonblocking: {error}"))?;
            let _ = stream.set_nodelay(true);
            clients.push(SwarmClient {
                stream,
                frame,
                written: 0,
                ack: Vec::new(),
                sent_at: None,
                latency: None,
                shed: false,
                dead: false,
            });
        }
        Ok(Self { clients })
    }

    /// Connections currently open (all of them, until `drive` completes).
    pub fn connections(&self) -> usize {
        self.clients.len()
    }

    /// Writes every frame and collects every ack (or convicts the client
    /// as lost at the deadline). Returns `(latencies, shed, lost)`.
    pub fn drive(&mut self, deadline: Duration) -> (Vec<Duration>, usize, usize) {
        let until = Instant::now() + deadline;
        loop {
            let mut moved = false;
            let mut pending = 0usize;
            for client in &mut self.clients {
                if client.done() {
                    continue;
                }
                pending += 1;
                moved |= service_client(client);
            }
            if pending == 0 || Instant::now() > until {
                break;
            }
            if !moved {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        let latencies: Vec<Duration> = self.clients.iter().filter_map(|c| c.latency).collect();
        let shed = self.clients.iter().filter(|c| c.shed).count();
        let lost = self.clients.iter().filter(|c| c.latency.is_none()).count();
        (latencies, shed, lost)
    }
}

/// One non-blocking service pass over a client: progress its write, then
/// its ack read. Returns whether any bytes moved.
fn service_client(client: &mut SwarmClient) -> bool {
    let mut moved = false;
    if client.written < client.frame.len() {
        match client.stream.write(&client.frame[client.written..]) {
            Ok(0) => {
                client.dead = true;
                return moved;
            }
            Ok(n) => {
                client.written += n;
                moved = true;
                if client.written == client.frame.len() {
                    client.sent_at = Some(Instant::now());
                }
            }
            Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => {}
            Err(_) => {
                client.dead = true;
                return moved;
            }
        }
    }
    let mut buf = [0u8; 1024];
    match client.stream.read(&mut buf) {
        Ok(0) => client.dead = true,
        Ok(n) => {
            client.ack.extend_from_slice(&buf[..n]);
            moved = true;
            try_complete_ack(client);
        }
        Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => {}
        Err(_) => client.dead = true,
    }
    moved
}

/// Parses the client-framed ack once enough bytes arrived and records the
/// client's admission latency and shed verdict.
fn try_complete_ack(client: &mut SwarmClient) {
    if client.ack.len() < CLIENT_HEADER_LEN {
        return;
    }
    let magic = u32::from_le_bytes(client.ack[0..4].try_into().unwrap());
    let version = client.ack[4];
    let len = u32::from_le_bytes(client.ack[5..9].try_into().unwrap()) as usize;
    if magic != CLIENT_MAGIC || version != CLIENT_VERSION {
        client.dead = true;
        return;
    }
    if client.ack.len() < CLIENT_HEADER_LEN + len {
        return;
    }
    let payload = &client.ack[CLIENT_HEADER_LEN..CLIENT_HEADER_LEN + len];
    match wire::decode(payload) {
        Ok(Frame::SubmitAck(ack)) => {
            client.shed = ack.shed;
            client.latency = client.sent_at.map(|at| at.elapsed());
        }
        _ => client.dead = true,
    }
}

/// The `p`-quantile (0‥1) of already-sorted latencies, in milliseconds.
fn percentile_ms(sorted: &[Duration], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 * p).ceil() as usize)
        .saturating_sub(1)
        .min(sorted.len() - 1);
    sorted[rank].as_secs_f64() * 1e3
}

/// Runs the full ingress benchmark: the concurrent swarm + equivalence
/// round, then the flood phase.
pub fn run_ingress(spec: &IngressSweepSpec, workers: usize) -> Result<IngressBaseline, String> {
    if spec.queue_capacity < spec.clients {
        return Err("swarm queue_capacity must hold every client".to_string());
    }
    let config = ingress_config(spec);
    let setup = Arc::new(derive_setup(&config).map_err(|error| format!("derive setup: {error}"))?);
    let source = Arc::new(
        WorkloadSource::new(
            Arc::clone(&setup),
            WorkloadSpec {
                pattern: TrafficPattern::ZipfMicroblog {
                    users: spec.users,
                    exponent: 1.1,
                },
                defense: Defense::Nizk,
                submissions: spec.clients,
                seed: spec.seed,
            },
        )
        .map_err(|error| format!("workload source: {error}"))?,
    );

    // Pre-encode every client's frame so the swarm phase measures the
    // transport, not submission building.
    let round = config.round as usize;
    let mut frames = Vec::with_capacity(spec.clients);
    for index in 0..spec.clients {
        let payload = source
            .submit_payload_at(index, round, SWARM_APP)
            .map_err(|error| format!("client {index} payload: {error}"))?;
        frames.push(atom_net::client_frame(&payload));
    }

    let was_enabled = atom_obs::enabled();
    atom_obs::set_enabled(true);
    atom_obs::reset();

    let evloop = EvloopOptions {
        max_connections: spec.clients + 64,
        ..EvloopOptions::default()
    };
    let server = IngressServer::bind(
        "127.0.0.1:0",
        IngressOptions {
            round,
            defense: Defense::Nizk,
            app: SWARM_APP,
            rate: spec.rate,
            burst: spec.rate.max(1.0),
            queue_capacity: spec.queue_capacity,
            retry_after: Duration::from_millis(100),
            evloop,
        },
    )
    .map_err(|error| format!("bind ingress: {error}"))?;

    // Phase 1: every connection opens before the first frame is written —
    // the concurrency the event loop must multiplex on its one thread.
    let mut swarm = ClientSwarm::connect(server.local_addr(), frames)?;
    let swarm_start = Instant::now();
    let (mut latencies, shed, lost) = swarm.drive(Duration::from_secs(120));
    let elapsed = swarm_start.elapsed();
    if lost > 0 {
        atom_obs::set_enabled(was_enabled);
        return Err(format!("{lost} swarm clients got no ack"));
    }
    if shed > 0 {
        atom_obs::set_enabled(was_enabled);
        return Err(format!(
            "{shed} swarm clients were shed by a queue sized to hold all"
        ));
    }
    let admitted = server.stats().admitted as usize;
    let peak_connections = atom_obs::gauge_peak("net.evloop.connections.peak").unwrap_or(0);
    latencies.sort();

    // Phase 2: the admitted submissions become a round, byte-compared
    // against the same workload materialized without sockets.
    let ingress_source = server
        .source(admitted, Duration::from_secs(10))
        .map_err(|error| format!("drain ingress: {error}"))?;
    server.shutdown();

    let mut options = EngineOptions::with_workers(workers);
    options.intake_window = spec.window;
    options.intake_chunk = spec.chunk;
    let streamed = Engine::new(options)
        .run_round(RoundJob::new(
            setup.as_ref().clone(),
            RoundSubmissions::Stream(Arc::new(ingress_source)),
            spec.seed,
        ))
        .map_err(|error| format!("socket-fed round: {error}"))?;
    let peak_in_flight = atom_obs::gauge_peak("engine.intake.peak_in_flight").unwrap_or(0);

    let materialized = Engine::with_workers(workers)
        .run_round(RoundJob::new(
            setup.as_ref().clone(),
            source
                .materialize()
                .map_err(|error| format!("materialize: {error}"))?,
            spec.seed,
        ))
        .map_err(|error| format!("materialized round: {error}"))?;
    let identical = u64::from(
        serialize_reports(std::slice::from_ref(&streamed)) == serialize_reports(&[materialized]),
    );

    let swarm_row = SwarmRow {
        clients: spec.clients,
        admitted,
        lost_frames: lost,
        peak_connections,
        accepted_per_sec: admitted as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_ms: percentile_ms(&latencies, 0.50),
        p99_ms: percentile_ms(&latencies, 0.99),
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        delivered: streamed.output.plaintexts.len(),
        peak_in_flight,
        identical,
    };

    // Phase 3: flood a deliberately tiny queue and record the shed
    // accounting. Sequential submit-and-ack keeps the phase deterministic:
    // nothing drains the queue, so exactly `capacity` offers are admitted.
    let flood_server = IngressServer::bind(
        "127.0.0.1:0",
        IngressOptions {
            round,
            defense: Defense::Nizk,
            app: SWARM_APP,
            rate: spec.rate,
            burst: spec.rate.max(1.0),
            queue_capacity: spec.flood_queue_capacity,
            retry_after: Duration::from_millis(100),
            evloop: EvloopOptions::default(),
        },
    )
    .map_err(|error| format!("bind flood ingress: {error}"))?;
    let flood_payload = source
        .submit_payload_at(0, round, SWARM_APP)
        .map_err(|error| format!("flood payload: {error}"))?;
    let mut flood_shed = 0usize;
    for index in 0..spec.flood_offers {
        let mut stream = TcpStream::connect(flood_server.local_addr())
            .map_err(|error| format!("flood client {index}: {error}"))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .map_err(|error| format!("flood client {index}: {error}"))?;
        // Re-stamp the client id so dedup can't hide the flood.
        let payload = {
            let mut payload = flood_payload.clone();
            payload[5..13].copy_from_slice(&(index as u64).to_le_bytes());
            payload
        };
        stream
            .write_all(&atom_net::client_frame(&payload))
            .map_err(|error| format!("flood client {index} write: {error}"))?;
        let ack = atom_net::read_client_frame(&mut stream, 1 << 20)
            .map_err(|error| format!("flood client {index} ack: {error}"))?;
        match wire::decode(&ack) {
            Ok(Frame::SubmitAck(ack)) if ack.shed => flood_shed += 1,
            Ok(Frame::SubmitAck(_)) => {}
            other => return Err(format!("flood client {index}: unexpected ack {other:?}")),
        }
    }
    let flood_stats = flood_server.stats();
    flood_server.shutdown();
    atom_obs::set_enabled(was_enabled);
    if flood_stats.offered != flood_stats.admitted + flood_stats.shed_queue {
        return Err("flood accounting does not conserve offers".to_string());
    }
    if flood_stats.shed_queue as usize != flood_shed {
        return Err("flood shed acks disagree with the server's counter".to_string());
    }

    Ok(IngressBaseline {
        clients: spec.clients,
        groups: spec.groups,
        iterations: spec.iterations,
        seed: spec.seed,
        swarm: swarm_row,
        flood: FloodRow {
            offered: flood_stats.offered as usize,
            admitted: flood_stats.admitted as usize,
            shed: flood_stats.shed_queue as usize,
            queue_capacity: spec.flood_queue_capacity,
        },
    })
}

impl IngressBaseline {
    /// The canonical `BENCH_ingress.json` serialization (stable field
    /// order, readable diffs).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"clients\": {},\n  \"groups\": {},\n  \"iterations\": {},\n  \
             \"seed\": {},\n  \"swarm\": {{\"clients\": {}, \"admitted\": {}, \
             \"lost_frames\": {}, \"peak_connections\": {}, \"accepted_per_sec\": {:.1}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"elapsed_ms\": {:.1}, \
             \"delivered\": {}, \"peak_in_flight\": {}, \"identical\": {}}},\n  \
             \"flood\": {{\"offered\": {}, \"admitted\": {}, \"shed\": {}, \
             \"queue_capacity\": {}}}\n}}\n",
            self.clients,
            self.groups,
            self.iterations,
            self.seed,
            self.swarm.clients,
            self.swarm.admitted,
            self.swarm.lost_frames,
            self.swarm.peak_connections,
            self.swarm.accepted_per_sec,
            self.swarm.p50_ms,
            self.swarm.p99_ms,
            self.swarm.elapsed_ms,
            self.swarm.delivered,
            self.swarm.peak_in_flight,
            self.swarm.identical,
            self.flood.offered,
            self.flood.admitted,
            self.flood.shed,
            self.flood.queue_capacity,
        )
    }

    /// Parses what [`IngressBaseline::to_json`] wrote. Tolerant of
    /// whitespace, intolerant of missing fields.
    pub fn parse(json: &str) -> Result<Self, String> {
        let swarm_at = json
            .find("\"swarm\"")
            .ok_or_else(|| "missing field swarm".to_string())?;
        let flood_at = json
            .find("\"flood\"")
            .ok_or_else(|| "missing field flood".to_string())?;
        if flood_at < swarm_at {
            return Err("flood must follow swarm".to_string());
        }
        let head = &json[..swarm_at];
        let swarm_src = &json[swarm_at..flood_at];
        let flood_src = &json[flood_at..];
        Ok(Self {
            clients: field_num(head, "clients")? as usize,
            groups: field_num(head, "groups")? as usize,
            iterations: field_num(head, "iterations")? as usize,
            seed: field_num(head, "seed")? as u64,
            swarm: SwarmRow {
                clients: field_num(swarm_src, "clients")? as usize,
                admitted: field_num(swarm_src, "admitted")? as usize,
                lost_frames: field_num(swarm_src, "lost_frames")? as usize,
                peak_connections: field_num(swarm_src, "peak_connections")? as u64,
                accepted_per_sec: field_num(swarm_src, "accepted_per_sec")?,
                p50_ms: field_num(swarm_src, "p50_ms")?,
                p99_ms: field_num(swarm_src, "p99_ms")?,
                elapsed_ms: field_num(swarm_src, "elapsed_ms")?,
                delivered: field_num(swarm_src, "delivered")? as usize,
                peak_in_flight: field_num(swarm_src, "peak_in_flight")? as u64,
                identical: field_num(swarm_src, "identical")? as u64,
            },
            flood: FloodRow {
                offered: field_num(flood_src, "offered")? as usize,
                admitted: field_num(flood_src, "admitted")? as usize,
                shed: field_num(flood_src, "shed")? as usize,
                queue_capacity: field_num(flood_src, "queue_capacity")? as usize,
            },
        })
    }
}

/// Renders the ingress baseline: the swarm line (concurrency, admission
/// throughput, client-side latency, equivalence verdict) and the flood
/// line (shed accounting against the queue bound).
pub fn print_fig_ingress(baseline: &IngressBaseline) {
    println!(
        "fig_ingress: event-driven client ingress — {} concurrent clients, \
         {} groups, {} iterations, seed {:#x}",
        baseline.clients, baseline.groups, baseline.iterations, baseline.seed
    );
    let swarm = &baseline.swarm;
    println!(
        "  swarm: {} clients → {} admitted ({} lost), peak {} connections on one thread",
        swarm.clients, swarm.admitted, swarm.lost_frames, swarm.peak_connections
    );
    println!(
        "         {:.0} accepted/s, admission latency p50 {:.3} ms / p99 {:.3} ms, \
         phase {:.1} ms",
        swarm.accepted_per_sec, swarm.p50_ms, swarm.p99_ms, swarm.elapsed_ms
    );
    println!(
        "  round: {} delivered, peak {} in-flight intake, byte-identical to \
         materialized: {}",
        swarm.delivered,
        swarm.peak_in_flight,
        if swarm.identical == 1 { "yes" } else { "NO" }
    );
    let flood = &baseline.flood;
    println!(
        "  flood: {} offered past a {}-slot queue → {} admitted + {} shed \
         (retry hints, no OOM, no hang)",
        flood.offered, flood.queue_capacity, flood.admitted, flood.shed
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip_is_lossless() {
        let baseline = IngressBaseline {
            clients: 1_200,
            groups: 3,
            iterations: 2,
            seed: 0xA70C,
            swarm: SwarmRow {
                clients: 1_200,
                admitted: 1_200,
                lost_frames: 0,
                peak_connections: 1_200,
                accepted_per_sec: 15_000.0,
                p50_ms: 1.25,
                p99_ms: 9.5,
                elapsed_ms: 80.0,
                delivered: 1_200,
                peak_in_flight: 128,
                identical: 1,
            },
            flood: FloodRow {
                offered: 64,
                admitted: 16,
                shed: 48,
                queue_capacity: 16,
            },
        };
        let parsed = IngressBaseline::parse(&baseline.to_json()).unwrap();
        assert_eq!(parsed, baseline);
    }

    #[test]
    fn percentiles_read_the_sorted_tail() {
        let sorted: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert!((percentile_ms(&sorted, 0.50) - 50.0).abs() < 1e-9);
        assert!((percentile_ms(&sorted, 0.99) - 99.0).abs() < 1e-9);
        assert_eq!(percentile_ms(&[], 0.99), 0.0);
    }

    #[test]
    fn a_small_swarm_round_trips_and_the_flood_sheds() {
        let spec = IngressSweepSpec {
            clients: 24,
            users: 200,
            window: 2,
            chunk: 8,
            queue_capacity: 64,
            flood_offers: 12,
            flood_queue_capacity: 4,
            ..IngressSweepSpec::default()
        };
        let baseline = run_ingress(&spec, 2).unwrap();
        assert_eq!(baseline.swarm.admitted, 24);
        assert_eq!(baseline.swarm.lost_frames, 0);
        assert_eq!(baseline.swarm.delivered, 24);
        assert_eq!(baseline.swarm.identical, 1);
        assert!(baseline.swarm.peak_connections >= 24);
        assert!(baseline.swarm.accepted_per_sec > 0.0);
        assert!(baseline.swarm.peak_in_flight <= (spec.window * spec.chunk) as u64);
        assert_eq!(baseline.flood.offered, 12);
        assert_eq!(baseline.flood.admitted, 4);
        assert_eq!(baseline.flood.shed, 8);
    }
}
