//! Criterion benchmark for Fig. 5/6: one group mixing iteration.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use atom_bench::fixtures::{bench_rng, group_with_batch};
use atom_core::config::Defense;
use atom_core::group::{group_mix_iteration, GroupStepOptions};

fn bench_mixing(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_mixing_iteration");
    group.sample_size(10);
    for messages in [32usize, 128] {
        for defense in [Defense::Trap, Defense::Nizk] {
            let label = match defense {
                Defense::Trap => "trap",
                Defense::Nizk => "nizk",
            };
            group.bench_with_input(
                BenchmarkId::new(label, messages),
                &messages,
                |b, &messages| {
                    let (setup, grp, batch, padded) = group_with_batch(defense, 4, messages);
                    let next = setup.groups[1].public_key;
                    let participating = grp.participating(&[]).unwrap();
                    let options = GroupStepOptions::new(defense);
                    b.iter_batched(
                        || batch.clone(),
                        |batch| {
                            let mut rng = bench_rng();
                            group_mix_iteration(
                                &grp,
                                &participating,
                                batch,
                                &[next],
                                padded,
                                &options,
                                None,
                                &mut rng,
                            )
                            .unwrap()
                        },
                        BatchSize::LargeInput,
                    )
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_mixing);
criterion_main!(benches);
