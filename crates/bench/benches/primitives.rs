//! Criterion microbenchmarks for the Table 3 primitives.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use atom_crypto::batch::{verify_shuffle_batch, ShuffleVerification};
use atom_crypto::elgamal::{encrypt, encrypt_message, reencrypt, shuffle, KeyPair};
use atom_crypto::encoding::encode_message;
use atom_crypto::nizk::enc::{prove_encryption, verify_encryption};
use atom_crypto::nizk::shuffle::{prove_shuffle, verify_shuffle};
use atom_crypto::RistrettoPoint;

fn bench_primitives(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let kp = KeyPair::generate(&mut rng);
    let next = KeyPair::generate(&mut rng);
    let point = RistrettoPoint::random(&mut rng);
    let (ct, _) = encrypt(&kp.public, &point, &mut rng);

    let mut group = c.benchmark_group("table3");
    group.sample_size(20);
    group.bench_function("enc", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| encrypt(&kp.public, &point, &mut rng))
    });
    group.bench_function("reenc", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| reencrypt(&kp.secret.0, Some(&next.public), &ct, &mut rng))
    });

    let batch: Vec<_> = (0..64)
        .map(|i| {
            let points = encode_message(&[i as u8]).unwrap();
            encrypt_message(&kp.public, &points, &mut rng).0
        })
        .collect();
    group.bench_function("shuffle_64", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| shuffle(&kp.public, &batch, &mut rng).unwrap())
    });
    group.bench_function("shufproof_prove_64", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter_batched(
            || shuffle(&kp.public, &batch, &mut rng).unwrap(),
            |(outputs, witness)| {
                let mut rng = StdRng::seed_from_u64(6);
                prove_shuffle(&kp.public, &batch, &outputs, &witness, &mut rng).unwrap()
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("shufproof_verify_64", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        let (outputs, witness) = shuffle(&kp.public, &batch, &mut rng).unwrap();
        let proof = prove_shuffle(&kp.public, &batch, &outputs, &witness, &mut rng).unwrap();
        b.iter(|| verify_shuffle(&kp.public, &batch, &outputs, &proof).unwrap())
    });
    group.bench_function("shufproof_verify_batch_4x64", |b| {
        // A 4-member shuffle chain settled in one combined RLC check — the
        // group engine's verification hot path.
        let mut rng = StdRng::seed_from_u64(9);
        let mut stages = vec![batch.clone()];
        let mut proofs = Vec::new();
        for _ in 0..4 {
            let inputs = stages.last().unwrap();
            let (outputs, witness) = shuffle(&kp.public, inputs, &mut rng).unwrap();
            proofs.push(prove_shuffle(&kp.public, inputs, &outputs, &witness, &mut rng).unwrap());
            stages.push(outputs);
        }
        let items: Vec<ShuffleVerification<'_>> = proofs
            .iter()
            .enumerate()
            .map(|(link, proof)| ShuffleVerification {
                pk: &kp.public,
                inputs: &stages[link],
                outputs: &stages[link + 1],
                proof,
            })
            .collect();
        b.iter(|| verify_shuffle_batch(&items).unwrap())
    });

    let points = encode_message(b"bench").unwrap();
    let (msg_ct, randomness) = encrypt_message(&kp.public, &points, &mut rng);
    group.bench_function("encproof_prove", |b| {
        let mut rng = StdRng::seed_from_u64(8);
        b.iter(|| prove_encryption(&kp.public, 0, &msg_ct, &randomness, &mut rng).unwrap())
    });
    let proof = prove_encryption(&kp.public, 0, &msg_ct, &randomness, &mut rng).unwrap();
    group.bench_function("encproof_verify", |b| {
        b.iter(|| verify_encryption(&kp.public, 0, &msg_ct, &proof).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
