//! Criterion microbenchmarks for the batched crypto engine: naive vs
//! windowed vs fixed-base exponentiation, fold vs Montgomery
//! multiplication, and per-proof vs RLC-batched proof verification.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use curve25519_dalek::field::{PowTable, P, U256};
use curve25519_dalek::ristretto::RistrettoPoint;
use curve25519_dalek::scalar::Scalar;

use atom_crypto::batch::{verify_encryption_batch, verify_reencryption_batch, EncVerification};
use atom_crypto::elgamal::{encrypt_message, reencrypt_message, KeyPair};
use atom_crypto::encoding::encode_message;
use atom_crypto::nizk::enc::{prove_encryption, verify_encryption, EncProof};
use atom_crypto::nizk::reenc::{prove_reencryption, verify_reencryption, ReEncStatement};
use atom_crypto::MessageCiphertext;

/// Square-and-multiply over all 256 exponent bits: the pre-optimization
/// ladder, kept here as the comparison baseline.
fn pow_naive(base: &U256, exp: &U256) -> U256 {
    let mut acc = U256::ONE;
    for i in (0..256).rev() {
        acc = P.mul(&acc, &acc);
        if exp.bit(i) {
            acc = P.mul(&acc, base);
        }
    }
    acc
}

fn bench_field(c: &mut Criterion) {
    let base = U256([0x1234_5678_9abc_def0, 77, 3, 0x0fff_ffff_ffff]);
    let exp = U256([
        0x9e37_79b9_7f4a_7c15,
        0xbf58_476d_1ce4_e5b9,
        0x94d0_49bb_1331_11eb,
        0x2545_f491_4f6c_dd1d >> 2,
    ]);

    let mut group = c.benchmark_group("field");
    group.sample_size(50);
    group.bench_function("pow_naive", |b| b.iter(|| pow_naive(&base, &exp)));
    group.bench_function("pow_windowed", |b| b.iter(|| P.pow(&base, &exp)));
    let table = PowTable::new(&P, &base);
    group.bench_function("pow_fixed_base", |b| b.iter(|| table.pow(&P, &exp)));

    // Both operands are below `p` already (small top limbs), i.e. canonical.
    group.bench_function("mul_fold", |b| b.iter(|| P.mul(&base, &exp)));
    group.bench_function("mul_montgomery", |b| b.iter(|| P.mont_mul(&base, &exp)));
    group.bench_function("sqr", |b| b.iter(|| P.sqr(&base)));
    group.finish();
}

fn enc_batch(count: usize) -> (KeyPair, Vec<(MessageCiphertext, EncProof)>) {
    let mut rng = StdRng::seed_from_u64(1);
    let kp = KeyPair::generate(&mut rng);
    let items = (0..count)
        .map(|i| {
            let points = encode_message(format!("bench submission {i}").as_bytes()).unwrap();
            let (ct, randomness) = encrypt_message(&kp.public, &points, &mut rng);
            let proof = prove_encryption(&kp.public, 0, &ct, &randomness, &mut rng).unwrap();
            (ct, proof)
        })
        .collect();
    (kp, items)
}

fn bench_verification(c: &mut Criterion) {
    const BATCH: usize = 16;
    let (kp, items) = enc_batch(BATCH);
    let refs: Vec<EncVerification<'_>> = items
        .iter()
        .map(|(ct, proof)| EncVerification {
            pk: &kp.public,
            group_id: 0,
            ciphertext: ct,
            proof,
        })
        .collect();

    let mut group = c.benchmark_group("verify");
    group.sample_size(20);
    group.bench_function("enc_per_proof_16", |b| {
        b.iter(|| {
            for (ct, proof) in &items {
                verify_encryption(&kp.public, 0, ct, proof).unwrap();
            }
        })
    });
    group.bench_function("enc_batch_16", |b| {
        b.iter(|| verify_encryption_batch(&refs).unwrap())
    });

    let mut rng = StdRng::seed_from_u64(2);
    let server = KeyPair::generate(&mut rng);
    let next = KeyPair::generate(&mut rng);
    let pairs: Vec<_> = (0..BATCH)
        .map(|i| {
            let points = encode_message(format!("bench hop {i}").as_bytes()).unwrap();
            let (input, _) = encrypt_message(&server.public, &points, &mut rng);
            let (output, witnesses) =
                reencrypt_message(&server.secret.0, Some(&next.public), &input, &mut rng);
            let stmt = ReEncStatement {
                peel_public: &server.public.0,
                next_pk: Some(&next.public),
                input: &input,
                output: &output,
            };
            let proof = prove_reencryption(&stmt, &witnesses, &mut rng).unwrap();
            (input, output, proof)
        })
        .collect();
    let statements: Vec<ReEncStatement<'_>> = pairs
        .iter()
        .map(|(input, output, _)| ReEncStatement {
            peel_public: &server.public.0,
            next_pk: Some(&next.public),
            input,
            output,
        })
        .collect();
    let proofs: Vec<_> = pairs.iter().map(|(_, _, p)| p.clone()).collect();

    group.bench_function("reenc_per_proof_16", |b| {
        b.iter(|| {
            for (stmt, proof) in statements.iter().zip(proofs.iter()) {
                verify_reencryption(stmt, proof).unwrap();
            }
        })
    });
    group.bench_function("reenc_batch_16", |b| {
        b.iter(|| verify_reencryption_batch(&statements, &proofs).unwrap())
    });
    group.finish();
}

fn bench_multiscalar(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let points: Vec<RistrettoPoint> = (0..16).map(|_| RistrettoPoint::random(&mut rng)).collect();
    let scalars: Vec<Scalar> = (0..16).map(|_| Scalar::random(&mut rng)).collect();

    let mut group = c.benchmark_group("multiexp");
    group.sample_size(20);
    group.bench_function("separate_16", |b| {
        b.iter(|| {
            scalars
                .iter()
                .zip(points.iter())
                .map(|(s, p)| s * p)
                .sum::<RistrettoPoint>()
        })
    });
    group.bench_function("straus_16", |b| {
        b.iter(|| RistrettoPoint::multiscalar_mul(&scalars, &points))
    });
    group.finish();
}

criterion_group!(benches, bench_field, bench_verification, bench_multiscalar);
criterion_main!(benches);
