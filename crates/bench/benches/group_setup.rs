//! Criterion benchmark for Table 4: DKG-based anytrust group setup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use atom_crypto::dkg::{run_dkg, DkgParams};

fn bench_group_setup(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_group_setup");
    group.sample_size(10);
    for size in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let params = DkgParams::anytrust(size).unwrap();
            let mut rng = StdRng::seed_from_u64(size as u64);
            b.iter(|| run_dkg(&params, &mut rng).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_group_setup);
criterion_main!(benches);
