//! Calibrated end-to-end latency model for large Atom deployments.
//!
//! This reproduces the methodology of §6.2: per-iteration group compute time
//! is derived from the primitive costs (Table 3 / [`PrimitiveCosts`]),
//! heterogeneous server capacities follow the Tor-like mix, network time is
//! one inter-group hop plus batch transmission per iteration, and two
//! overhead terms that only matter at very large scale — the `G²`
//! inter-group connection fan-out and the single trustee group's connection
//! handling — reproduce the sub-linear speed-up of Fig. 11.

use serde::{Deserialize, Serialize};

use atom_core::config::Defense;
use atom_net::latency::{assign_server_classes, paper_server_mix, ServerClass};

use crate::costs::PrimitiveCosts;

/// A deployment whose round latency we want to estimate.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeploymentSpec {
    /// Number of physical servers.
    pub num_servers: usize,
    /// Number of groups (defaults to one group per server, as in §6.2).
    pub num_groups: usize,
    /// Servers per group.
    pub group_size: usize,
    /// Members participating per group (`k − (h−1)`).
    pub participating: usize,
    /// Mixing iterations `T`.
    pub iterations: usize,
    /// Total ciphertexts routed through the network (2× users + dummies in
    /// the trap variant).
    pub mix_messages: u64,
    /// Group elements per ciphertext (message length / bytes-per-point).
    pub points_per_message: usize,
    /// Serialized bytes per ciphertext on the wire.
    pub bytes_per_message: u64,
    /// Defence variant.
    pub defense: Defense,
    /// Average one-way inter-server latency in seconds (the paper emulates
    /// 40–160 ms, i.e. 0.1 s on average).
    pub hop_latency: f64,
    /// Per-connection setup cost in seconds (TLS handshake amortization);
    /// only significant at very large group counts.
    pub connection_setup: f64,
    /// Per-report cost at the trustee group in seconds (one report per
    /// server per round).
    pub trustee_report_cost: f64,
}

impl DeploymentSpec {
    /// The paper's evaluation setup (§6.2): one group per server, `T = 10`,
    /// trap variant, one failure tolerated (33-server groups, 32
    /// participating), 40–160 ms links.
    pub fn paper_microblogging(num_servers: usize, users: u64) -> Self {
        // 160-byte posts → payload ≈ 211 bytes → 8 Ristretto points here
        // (the paper packs 32 bytes per P-256 point; see DESIGN.md).
        let points = 8;
        let dummies = 32 * 13_000; // µ = 13,000 per server in one anytrust group (§6.2)
        Self {
            num_servers,
            num_groups: num_servers,
            group_size: 33,
            participating: 32,
            iterations: 10,
            mix_messages: 2 * users + dummies,
            points_per_message: points,
            bytes_per_message: (points as u64) * 3 * 32,
            defense: Defense::Trap,
            hop_latency: 0.1,
            connection_setup: 3.0e-3,
            trustee_report_cost: 1.0e-2,
        }
        .validate()
    }

    /// The paper's dialing setup: 80-byte dialing messages.
    pub fn paper_dialing(num_servers: usize, users: u64) -> Self {
        let points = 5;
        let dummies = 32 * 13_000;
        Self {
            num_servers,
            num_groups: num_servers,
            group_size: 33,
            participating: 32,
            iterations: 10,
            mix_messages: 2 * users + dummies,
            points_per_message: points,
            bytes_per_message: (points as u64) * 3 * 32,
            defense: Defense::Trap,
            hop_latency: 0.1,
            connection_setup: 3.0e-3,
            trustee_report_cost: 1.0e-2,
        }
        .validate()
    }

    fn validate(self) -> Self {
        assert!(self.num_servers > 0 && self.num_groups > 0 && self.group_size > 0);
        assert!(self.participating <= self.group_size);
        self
    }
}

/// Breakdown of an estimated round latency, in seconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RoundEstimate {
    /// Compute time along the critical path (all groups work in parallel).
    pub compute_seconds: f64,
    /// Network propagation + transmission along the critical path.
    pub network_seconds: f64,
    /// Connection-management overhead (the `G²` fan-out term).
    pub connection_seconds: f64,
    /// Trustee-group overhead (reports and key-share handling).
    pub trustee_seconds: f64,
}

impl RoundEstimate {
    /// Total end-to-end latency in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.compute_seconds + self.network_seconds + self.connection_seconds + self.trustee_seconds
    }
}

/// Average number of cores and bandwidth across the heterogeneous fleet.
fn fleet_averages(num_servers: usize) -> (f64, f64) {
    let classes: Vec<ServerClass> = assign_server_classes(num_servers, &paper_server_mix(), 17);
    let cores: f64 = classes.iter().map(|c| c.cores as f64).sum::<f64>() / num_servers as f64;
    let bandwidth: f64 =
        classes.iter().map(|c| c.bandwidth_mbps as f64).sum::<f64>() / num_servers as f64;
    (cores, bandwidth)
}

/// Estimates the end-to-end latency of one Atom round.
pub fn estimate_round(spec: &DeploymentSpec, costs: &PrimitiveCosts) -> RoundEstimate {
    let (avg_cores, avg_bandwidth_mbps) = fleet_averages(spec.num_servers);
    let points = spec.points_per_message as f64;
    let per_group_messages = (spec.mix_messages as f64 / spec.num_groups as f64).ceil();

    // --- Per-member compute for one iteration over one group's batch. ---
    let shuffle_cost = per_group_messages * points * costs.shuffle_per_msg;
    let reenc_cost = per_group_messages * points * costs.reenc;
    let per_member = match spec.defense {
        Defense::Trap => {
            // Fully parallelizable across cores (Fig. 7).
            (shuffle_cost + reenc_cost) / avg_cores
        }
        Defense::Nizk => {
            // Proof generation/verification dominates and is only partially
            // parallelizable (Fig. 7 shows sub-linear speed-up); charge the
            // proof work at half the core count. Verification is charged at
            // the batched rate: the engine settles each group step's whole
            // shuffle chain in one combined RLC check.
            let proofs = per_group_messages
                * points
                * (costs.shufproof_prove_per_msg
                    + costs.shufproof_verify_batch_per_msg
                    + costs.reencproof_prove
                    + costs.reencproof_verify);
            (shuffle_cost + reenc_cost) / avg_cores + proofs / (avg_cores / 2.0).max(1.0)
        }
    };
    // The members of a group work sequentially (§4.2): the iteration time is
    // the sum over participating members.
    let per_iteration_compute = per_member * spec.participating as f64;

    // --- Network: one inter-group hop plus batch transmission per iteration.
    let batch_bytes = per_group_messages * spec.bytes_per_message as f64;
    let transmission = batch_bytes * 8.0 / (avg_bandwidth_mbps * 1.0e6);
    // Within a group the ciphertexts also travel member-to-member; charge one
    // hop per member.
    let intra_group = spec.hop_latency * spec.participating as f64;
    let per_iteration_network = spec.hop_latency + transmission + intra_group;

    // --- Large-scale overheads (Fig. 11). ---
    // Each group maintains connections to every group of the next layer:
    // G connections per group per iteration, set up/managed serially.
    let connection_seconds =
        spec.iterations as f64 * spec.num_groups as f64 * spec.connection_setup;
    // The single trustee group receives one report per server per round and
    // hands out key shares; this serializes at the trustees.
    let trustee_seconds =
        spec.num_servers as f64 * spec.group_size as f64 / 33.0 * spec.trustee_report_cost;

    RoundEstimate {
        compute_seconds: per_iteration_compute * spec.iterations as f64,
        network_seconds: per_iteration_network * spec.iterations as f64,
        connection_seconds,
        trustee_seconds,
    }
}

/// Speed-up of `spec` relative to `baseline` (both under the same costs).
pub fn speedup(baseline: &DeploymentSpec, spec: &DeploymentSpec, costs: &PrimitiveCosts) -> f64 {
    estimate_round(baseline, costs).total_seconds() / estimate_round(spec, costs).total_seconds()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_linear_in_messages() {
        let costs = PrimitiveCosts::paper_table3();
        let one = estimate_round(&DeploymentSpec::paper_microblogging(1024, 500_000), &costs);
        let two = estimate_round(
            &DeploymentSpec::paper_microblogging(1024, 1_000_000),
            &costs,
        );
        let four = estimate_round(
            &DeploymentSpec::paper_microblogging(1024, 2_000_000),
            &costs,
        );
        assert!(two.compute_seconds > one.compute_seconds);
        assert!(four.compute_seconds > 1.8 * two.compute_seconds);
        assert!(four.compute_seconds < 2.2 * two.compute_seconds);
    }

    #[test]
    fn speedup_is_roughly_linear_up_to_1024_servers() {
        // Fig. 10: doubling the servers roughly halves the latency.
        let costs = PrimitiveCosts::paper_table3();
        let base = DeploymentSpec::paper_microblogging(128, 1_000_000);
        let double = DeploymentSpec::paper_microblogging(256, 1_000_000);
        let eight_fold = DeploymentSpec::paper_microblogging(1024, 1_000_000);
        let s2 = speedup(&base, &double, &costs);
        let s8 = speedup(&base, &eight_fold, &costs);
        assert!((1.7..=2.2).contains(&s2), "s2 = {s2}");
        assert!((5.5..=8.5).contains(&s8), "s8 = {s8}");
    }

    #[test]
    fn very_large_networks_show_sublinear_speedup() {
        // Fig. 11: at a billion messages, going from 2^10 to 2^15 servers
        // gives clearly less than the ideal 32× speed-up.
        let costs = PrimitiveCosts::paper_table3();
        let base = DeploymentSpec::paper_microblogging(1 << 10, 500_000_000);
        let big = DeploymentSpec::paper_microblogging(1 << 15, 500_000_000);
        let s = speedup(&base, &big, &costs);
        assert!(s > 12.0, "s = {s}");
        assert!(s < 28.0, "s = {s}");
    }

    #[test]
    fn nizk_variant_is_several_times_slower() {
        let costs = PrimitiveCosts::paper_table3();
        let mut trap = DeploymentSpec::paper_microblogging(1024, 1_000_000);
        let mut nizk = trap.clone();
        nizk.defense = Defense::Nizk;
        // The NIZK variant routes half as many ciphertexts (no traps).
        trap.mix_messages = 2 * 1_000_000;
        nizk.mix_messages = 1_000_000;
        let t = estimate_round(&trap, &costs).compute_seconds;
        let n = estimate_round(&nizk, &costs).compute_seconds;
        let ratio = n / t;
        assert!((2.0..=8.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn estimate_components_are_positive() {
        let costs = PrimitiveCosts::paper_table3();
        let estimate = estimate_round(&DeploymentSpec::paper_microblogging(256, 100_000), &costs);
        assert!(estimate.compute_seconds > 0.0);
        assert!(estimate.network_seconds > 0.0);
        assert!(estimate.connection_seconds > 0.0);
        assert!(estimate.trustee_seconds > 0.0);
        assert!(estimate.total_seconds() > estimate.compute_seconds);
    }
}
