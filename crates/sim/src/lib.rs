//! # atom-sim
//!
//! Calibrated large-scale simulation of Atom deployments, reproducing the
//! methodology the paper itself uses for its biggest experiment (Fig. 11:
//! "we modified the implementation to model the expected latency given ...
//! the values shown in Table 3").
//!
//! * [`costs`] — primitive cost models: the paper's Table 3 numbers or
//!   numbers measured on this machine.
//! * [`deployment`] — end-to-end round-latency estimation for arbitrary
//!   deployment sizes, including the large-scale overhead terms that make
//!   the speed-up sub-linear beyond ~2¹⁰ servers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod costs;
pub mod deployment;

pub use costs::PrimitiveCosts;
pub use deployment::{estimate_round, speedup, DeploymentSpec, RoundEstimate};
