//! Primitive cost models (Table 3) — either the paper's measured numbers or
//! numbers measured on the local machine.
//!
//! The paper's own large-scale figure (Fig. 11) is produced by "modelling the
//! expected latency given the values in Table 3" rather than running the full
//! network; this module provides the same calibration step for this
//! reproduction.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use atom_crypto::batch::{verify_shuffle_batch, ShuffleVerification};
use atom_crypto::elgamal::{encrypt, encrypt_message, reencrypt, shuffle, KeyPair};
use atom_crypto::encoding::encode_message;
use atom_crypto::nizk::enc::{prove_encryption, verify_encryption};
use atom_crypto::nizk::reenc::{prove_reencryption, verify_reencryption, ReEncStatement};
use atom_crypto::nizk::shuffle::{prove_shuffle, verify_shuffle_sequential};
use atom_crypto::RistrettoPoint;

/// Per-operation latencies in seconds, for single-point (32-byte) messages —
/// the same quantities as Table 3 of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PrimitiveCosts {
    /// `Enc` of one group element.
    pub enc: f64,
    /// `ReEnc` of one group element.
    pub reenc: f64,
    /// `Shuffle` per element (the paper reports 1,024 elements; this is the
    /// per-element cost).
    pub shuffle_per_msg: f64,
    /// `EncProof` generation.
    pub encproof_prove: f64,
    /// `EncProof` verification.
    pub encproof_verify: f64,
    /// `ReEncProof` generation.
    pub reencproof_prove: f64,
    /// `ReEncProof` verification.
    pub reencproof_verify: f64,
    /// `ShufProof` generation per element.
    pub shufproof_prove_per_msg: f64,
    /// `ShufProof` verification per element, one proof at a time (the
    /// sequential verifier — the pre-batching hot path, kept for blame).
    pub shufproof_verify_per_msg: f64,
    /// `ShufProof` verification per element when a whole shuffle chain is
    /// settled through one combined RLC check
    /// (`atom_crypto::batch::verify_shuffle_batch`) — the deployed hot path.
    pub shufproof_verify_batch_per_msg: f64,
}

impl PrimitiveCosts {
    /// The values reported in Table 3 of the paper (NIST P-256, c4.xlarge).
    pub fn paper_table3() -> Self {
        Self {
            enc: 1.40e-4,
            reenc: 3.35e-4,
            shuffle_per_msg: 1.07e-1 / 1024.0,
            encproof_prove: 1.62e-4,
            encproof_verify: 1.39e-4,
            reencproof_prove: 6.55e-4,
            reencproof_verify: 4.46e-4,
            shufproof_prove_per_msg: 7.57e-1 / 1024.0,
            shufproof_verify_per_msg: 1.41 / 1024.0,
            // The paper verifies shuffle proofs one at a time; the batched
            // figure models the ≥3× RLC gain this reproduction measures and
            // CI-gates (`BENCH_crypto.json: shuffle_batch_speedup`).
            shufproof_verify_batch_per_msg: 1.41 / 1024.0 / 3.0,
        }
    }

    /// Measures the primitives on this machine using `batch` single-point
    /// messages for the batched operations (use ≥256 in release builds for
    /// stable numbers; the Table 3 reproduction binary uses 1,024).
    pub fn measure(batch: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(0xC0575);
        let kp = KeyPair::generate(&mut rng);
        let next = KeyPair::generate(&mut rng);
        let point = RistrettoPoint::random(&mut rng);
        let reps = 64usize;

        let start = Instant::now();
        for _ in 0..reps {
            let _ = encrypt(&kp.public, &point, &mut rng);
        }
        let enc = start.elapsed().as_secs_f64() / reps as f64;

        let (ct, _) = encrypt(&kp.public, &point, &mut rng);
        let start = Instant::now();
        for _ in 0..reps {
            let _ = reencrypt(&kp.secret.0, Some(&next.public), &ct, &mut rng);
        }
        let reenc = start.elapsed().as_secs_f64() / reps as f64;

        // One-point messages for the batched operations.
        let batch_msgs: Vec<_> = (0..batch.max(2))
            .map(|i| {
                let points = encode_message(&[i as u8, (i >> 8) as u8]).unwrap();
                encrypt_message(&kp.public, &points, &mut rng).0
            })
            .collect();
        let start = Instant::now();
        let (shuffled, witness) = shuffle(&kp.public, &batch_msgs, &mut rng).unwrap();
        let shuffle_per_msg = start.elapsed().as_secs_f64() / batch_msgs.len() as f64;

        let start = Instant::now();
        let proof = prove_shuffle(&kp.public, &batch_msgs, &shuffled, &witness, &mut rng).unwrap();
        let shufproof_prove_per_msg = start.elapsed().as_secs_f64() / batch_msgs.len() as f64;

        // Extend into a real 3-member shuffle chain (distinct statements per
        // link — cloned statements would coalesce in the multi-exponentiation
        // and flatter the batched number), then verify it both ways.
        let mut stages = vec![batch_msgs.clone(), shuffled];
        let mut proofs = vec![proof];
        for _ in 1..3 {
            let inputs = stages.last().unwrap();
            let (outputs, witness) = shuffle(&kp.public, inputs, &mut rng).unwrap();
            proofs.push(prove_shuffle(&kp.public, inputs, &outputs, &witness, &mut rng).unwrap());
            stages.push(outputs);
        }
        let chain_elements = (proofs.len() * batch_msgs.len()) as f64;
        let start = Instant::now();
        for (link, proof) in proofs.iter().enumerate() {
            verify_shuffle_sequential(&kp.public, &stages[link], &stages[link + 1], proof).unwrap();
        }
        let shufproof_verify_per_msg = start.elapsed().as_secs_f64() / chain_elements;
        let items: Vec<ShuffleVerification<'_>> = proofs
            .iter()
            .enumerate()
            .map(|(link, proof)| ShuffleVerification {
                pk: &kp.public,
                inputs: &stages[link],
                outputs: &stages[link + 1],
                proof,
            })
            .collect();
        let start = Instant::now();
        verify_shuffle_batch(&items).unwrap();
        let shufproof_verify_batch_per_msg = start.elapsed().as_secs_f64() / chain_elements;

        let points = encode_message(&[7u8]).unwrap();
        let (msg_ct, randomness) = encrypt_message(&kp.public, &points, &mut rng);
        let start = Instant::now();
        for _ in 0..reps {
            let _ = prove_encryption(&kp.public, 0, &msg_ct, &randomness, &mut rng).unwrap();
        }
        let encproof_prove = start.elapsed().as_secs_f64() / reps as f64;
        let enc_proof = prove_encryption(&kp.public, 0, &msg_ct, &randomness, &mut rng).unwrap();
        let start = Instant::now();
        for _ in 0..reps {
            verify_encryption(&kp.public, 0, &msg_ct, &enc_proof).unwrap();
        }
        let encproof_verify = start.elapsed().as_secs_f64() / reps as f64;

        let (reenc_out, witnesses) = atom_crypto::elgamal::reencrypt_message(
            &kp.secret.0,
            Some(&next.public),
            &msg_ct,
            &mut rng,
        );
        let peel_public = kp.public.0;
        let stmt = ReEncStatement {
            peel_public: &peel_public,
            next_pk: Some(&next.public),
            input: &msg_ct,
            output: &reenc_out,
        };
        let start = Instant::now();
        for _ in 0..reps {
            let _ = prove_reencryption(&stmt, &witnesses, &mut rng).unwrap();
        }
        let reencproof_prove = start.elapsed().as_secs_f64() / reps as f64;
        let reenc_proof = prove_reencryption(&stmt, &witnesses, &mut rng).unwrap();
        let start = Instant::now();
        for _ in 0..reps {
            verify_reencryption(&stmt, &reenc_proof).unwrap();
        }
        let reencproof_verify = start.elapsed().as_secs_f64() / reps as f64;

        Self {
            enc,
            reenc,
            shuffle_per_msg,
            encproof_prove,
            encproof_verify,
            reencproof_prove,
            reencproof_verify,
            shufproof_prove_per_msg,
            shufproof_verify_per_msg,
            shufproof_verify_batch_per_msg,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_costs_match_table3_ratios() {
        let costs = PrimitiveCosts::paper_table3();
        // ShufProof verification is the most expensive per-element operation.
        assert!(costs.shufproof_verify_per_msg > costs.shufproof_prove_per_msg);
        assert!(costs.shufproof_prove_per_msg > costs.shuffle_per_msg);
        assert!(costs.reenc > costs.enc);
        // The batched verifier models the CI-gated ≥3× RLC gain.
        assert!(costs.shufproof_verify_batch_per_msg <= costs.shufproof_verify_per_msg / 3.0);
    }

    #[test]
    fn measured_costs_are_positive_and_ordered() {
        let costs = PrimitiveCosts::measure(8);
        assert!(costs.enc > 0.0);
        assert!(costs.reenc > 0.0);
        assert!(costs.shuffle_per_msg > 0.0);
        // The proof-bearing operations must cost more than the plain ones.
        assert!(costs.shufproof_prove_per_msg > costs.shuffle_per_msg);
        assert!(costs.reencproof_prove + costs.reencproof_verify > 0.0);
        // Batched verification must not cost more than per-proof (debug
        // builds are noisy, so no ratio floor here — the release-mode ≥3×
        // gate lives in the crypto_baseline binary).
        assert!(costs.shufproof_verify_batch_per_msg > 0.0);
        assert!(costs.shufproof_verify_batch_per_msg <= costs.shufproof_verify_per_msg);
    }
}
