//! Parallel pipelined rounds: the `atom-runtime` engine running three
//! microblog rounds in flight at once on a worker pool, with a deliberately
//! slow group showing why barrier-free mixing matters.
//!
//! Run with: `cargo run --release --example parallel_rounds`

use std::time::Duration;

use atom::core::config::{AtomConfig, Defense};
use atom::core::message::make_trap_submission;
use atom::runtime::{Engine, EngineOptions, RoundJob, RoundSubmissions};
use atom::setup_round;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(17);
    let rounds = 3;
    let posts_per_round = 6;

    let mut jobs = Vec::new();
    for round in 0..rounds {
        let mut config = AtomConfig::test_default();
        config.defense = Defense::Trap;
        config.num_groups = 4;
        config.iterations = 3;
        config.message_len = 48;
        config.round = round;
        let setup = setup_round(&config, &mut rng).expect("setup");

        let submissions: Vec<_> = (0..posts_per_round)
            .map(|i| {
                let gid = i % config.num_groups;
                make_trap_submission(
                    gid,
                    &setup.groups[gid].public_key,
                    &setup.trustees.public_key,
                    config.round,
                    format!("round {round}, post {i}").as_bytes(),
                    config.message_len,
                    &mut rng,
                )
                .expect("submission")
                .0
            })
            .collect();
        jobs.push(RoundJob::new(
            setup,
            RoundSubmissions::Trap(submissions),
            round,
        ));
    }

    // Group 2 is slow: 15 ms of extra compute per iteration. Without
    // pipelining every other group would wait for it at every layer.
    let mut options = EngineOptions::with_workers(4);
    options.stragglers = vec![(2, Duration::from_millis(15))];
    let engine = Engine::new(options);

    println!("running {rounds} trap rounds in flight on 4 workers (group 2 straggling)...\n");
    let reports = engine.run_rounds(jobs);

    for (round, report) in reports.into_iter().enumerate() {
        let report = report.expect("round must succeed");
        println!(
            "round {round}: {} posts delivered | {} mix messages, {} bytes on the wire",
            report.output.plaintexts.len(),
            report.mix_messages,
            report.mix_bytes,
        );
        println!(
            "         barrier latency {:>9.2?} | pipelined latency {:>9.2?}",
            report.output.timings.end_to_end(),
            report.pipelined_latency,
        );
        for plaintext in report.output.plaintexts.iter().take(2) {
            let text: Vec<u8> = plaintext.iter().copied().take_while(|&b| b != 0).collect();
            println!("         e.g. {:?}", String::from_utf8_lossy(&text));
        }
    }
}
