//! Quickstart: stand up a small Atom deployment in-process, send a handful of
//! anonymous messages through it with the trap-based defence, and print what
//! the exit groups publish.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;

use atom::core::config::AtomConfig;
use atom::core::message::make_trap_submission;
use atom::core::round::RoundDriver;
use atom::setup_round;

fn main() {
    let mut rng = StdRng::seed_from_u64(1);

    // A laptop-sized deployment: 4 anytrust groups of 3 servers each,
    // 3 mixing iterations of the square network, 32-byte messages.
    let mut config = AtomConfig::test_default();
    config.message_len = 32;
    config.num_groups = 4;
    config.iterations = 3;
    println!(
        "setting up {} groups of {} servers ...",
        config.num_groups, config.group_size
    );
    let setup = setup_round(&config, &mut rng).expect("round setup");
    let driver = RoundDriver::new(setup);

    // Eight users each submit one message to an entry group of their choice.
    let messages = [
        "meet at the fountain",
        "bring the documents",
        "the password is tulip",
        "stay off the main road",
        "call me on signal",
        "we publish tomorrow",
        "they are watching 5th st",
        "all clear tonight",
    ];
    let submissions: Vec<_> = messages
        .iter()
        .enumerate()
        .map(|(i, msg)| {
            let entry_group = i % config.num_groups;
            make_trap_submission(
                entry_group,
                &driver.setup().groups[entry_group].public_key,
                &driver.setup().trustees.public_key,
                config.round,
                msg.as_bytes(),
                config.message_len,
                &mut rng,
            )
            .expect("submission")
            .0
        })
        .collect();

    println!(
        "routing {} ciphertexts (messages + traps) ...",
        2 * submissions.len()
    );
    let output = driver
        .run_trap_round(&submissions, &mut rng)
        .expect("round should complete");

    println!(
        "\nanonymized output ({} messages):",
        output.plaintexts.len()
    );
    for (group, messages) in output.per_group.iter().enumerate() {
        for message in messages {
            let text: String = message
                .iter()
                .copied()
                .take_while(|&b| b != 0)
                .map(|b| b as char)
                .collect();
            println!("  [exit group {group}] {text}");
        }
    }
    println!(
        "\nend-to-end: {:.2?} compute across {} iterations",
        output.timings.total_compute,
        output.timings.iteration_critical_path.len()
    );
}
