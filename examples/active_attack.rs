//! Active-attack demonstration (§4.3/§4.4): a malicious server drops a
//! ciphertext mid-route. Under the NIZK defence the cheating server is
//! identified immediately; under the trap defence the round aborts before any
//! inner ciphertext is decrypted, and malicious *users* can be identified
//! after the fact (§4.6).
//!
//! Run with: `cargo run --release --example active_attack`

use rand::rngs::StdRng;
use rand::SeedableRng;

use atom::core::adversary::{AdversaryPlan, Misbehavior};
use atom::core::blame::identify_malicious_users;
use atom::core::config::{AtomConfig, Defense};
use atom::core::message::{make_nizk_submission, make_trap_submission};
use atom::core::round::RoundDriver;
use atom::core::AtomError;
use atom::setup_round;

fn main() {
    let mut rng = StdRng::seed_from_u64(13);
    let plan = AdversaryPlan {
        group: 1,
        member: 2,
        iteration: 1,
        action: Misbehavior::DropMessage { slot: 0 },
    };

    // --- Trap variant: the round aborts, no message is revealed. ---
    let mut config = AtomConfig::test_default();
    config.num_groups = 3;
    config.iterations = 3;
    let setup = setup_round(&config, &mut rng).expect("setup");
    let driver = RoundDriver::new(setup).with_adversary(plan);
    let submissions: Vec<_> = (0..6)
        .map(|i| {
            let gid = i % config.num_groups;
            make_trap_submission(
                gid,
                &driver.setup().groups[gid].public_key,
                &driver.setup().trustees.public_key,
                config.round,
                format!("sensitive message {i}").as_bytes(),
                config.message_len,
                &mut rng,
            )
            .unwrap()
            .0
        })
        .collect();
    match driver.run_trap_round(&submissions, &mut rng) {
        Err(AtomError::TrapCheckFailed(reason)) => {
            println!("[trap variant] round aborted as designed: {reason}");
            println!("[trap variant] trustees withheld the decryption key; no plaintext leaked");
        }
        other => println!("[trap variant] unexpected outcome: {other:?}"),
    }
    // The users were honest, so the blame protocol clears them all.
    let blames = identify_malicious_users(driver.setup(), &submissions).unwrap();
    println!(
        "[trap variant] blame protocol flags {} user(s) (expected 0)",
        blames.len()
    );

    // --- NIZK variant: the cheating server is identified on the spot. ---
    let mut config = AtomConfig::test_default();
    config.num_groups = 3;
    config.iterations = 3;
    config.defense = Defense::Nizk;
    let setup = setup_round(&config, &mut rng).expect("setup");
    let driver = RoundDriver::new(setup).with_adversary(plan);
    let submissions: Vec<_> = (0..6)
        .map(|i| {
            let gid = i % config.num_groups;
            make_nizk_submission(
                gid,
                &driver.setup().groups[gid].public_key,
                format!("sensitive message {i}").as_bytes(),
                config.message_len,
                &mut rng,
            )
            .unwrap()
            .0
        })
        .collect();
    match driver.run_nizk_round(&submissions, &mut rng) {
        Err(AtomError::ProtocolViolation {
            group,
            member,
            reason,
        }) => {
            println!("[nizk variant] caught cheating server: group {group}, member {member:?}");
            println!("[nizk variant] reason: {reason}");
        }
        other => println!("[nizk variant] unexpected outcome: {other:?}"),
    }
}
