//! Dialing (§5 of the paper): Alice and Carol anonymously "dial" Bob to
//! bootstrap a private conversation, Vuvuzela/Alpenhorn-style, with
//! differentially-private dummy calls hiding how many calls each mailbox
//! receives.
//!
//! Run with: `cargo run --release --example dialing`

use rand::rngs::StdRng;
use rand::SeedableRng;

use atom::apps::dialing::{
    dummy_count, make_dial_submission, make_dummy_submissions, DialIdentity, Mailboxes,
    PAPER_DIAL_LEN,
};
use atom::core::config::AtomConfig;
use atom::core::round::RoundDriver;
use atom::setup_round;

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);

    let mut config = AtomConfig::test_default();
    config.message_len = PAPER_DIAL_LEN;
    config.num_groups = 4;
    config.iterations = 3;
    let setup = setup_round(&config, &mut rng).expect("setup");
    let driver = RoundDriver::new(setup);

    let mailboxes = 16;
    let alice = DialIdentity::generate(&mut rng);
    let carol = DialIdentity::generate(&mut rng);
    let bob = DialIdentity::generate(&mut rng);
    println!("Bob listens on mailbox {}", bob.mailbox(mailboxes));

    // Real dial requests.
    let mut submissions = vec![
        make_dial_submission(&driver, &alice, &bob.keys.public, mailboxes, 0, &mut rng)
            .expect("alice dials bob"),
        make_dial_submission(&driver, &carol, &bob.keys.public, mailboxes, 2, &mut rng)
            .expect("carol dials bob"),
        make_dial_submission(&driver, &bob, &alice.keys.public, mailboxes, 1, &mut rng)
            .expect("bob dials alice back"),
    ];

    // Differentially-private cover traffic added by an anytrust group
    // (the paper uses mu = 13,000 per trustee; scaled down here).
    let dummies = dummy_count(6.0, 2.0, &mut rng);
    println!("adding {dummies} dummy dial requests for cover");
    submissions
        .extend(make_dummy_submissions(&driver, mailboxes, dummies, &mut rng).expect("dummies"));

    let output = driver
        .run_trap_round(&submissions, &mut rng)
        .expect("round");
    let boxes = Mailboxes::from_round(&output, mailboxes);
    println!(
        "round complete: {} requests distributed over {} mailboxes",
        boxes.total_requests(),
        mailboxes
    );

    let callers = boxes.check_mailbox(&bob);
    println!(
        "Bob downloads his mailbox and recognizes {} caller(s):",
        callers.len()
    );
    for caller in &callers {
        let who = if *caller == alice.keys.public {
            "Alice"
        } else if *caller == carol.keys.public {
            "Carol"
        } else {
            "unknown"
        };
        println!("  - {who}");
    }
    let alices = boxes.check_mailbox(&alice);
    println!(
        "Alice recognizes {} caller(s) (Bob dialing back)",
        alices.len()
    );
}
