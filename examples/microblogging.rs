//! Anonymous microblogging (§5 of the paper): users post tweet-length
//! messages, the exit groups publish them on a bulletin board, and nobody —
//! including a global eavesdropper colluding with most servers — can tell who
//! posted what.
//!
//! Run with: `cargo run --release --example microblogging`

use rand::rngs::StdRng;
use rand::SeedableRng;

use atom::apps::microblog::run_microblog_round;
use atom::core::config::AtomConfig;
use atom::core::round::RoundDriver;
use atom::net::LatencyModel;
use atom::setup_round;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // 160-byte posts like the paper's evaluation, 4 groups of 3 servers,
    // with the paper's 40-160 ms WAN latency model charged to the network
    // critical path.
    let mut config = AtomConfig::test_default();
    config.message_len = 160;
    config.num_groups = 4;
    config.iterations = 4;
    let setup = setup_round(&config, &mut rng).expect("setup");
    let driver = RoundDriver::new(setup).with_latency(LatencyModel::paper_wan(7));

    let posts = [
        "Protest at the central square, noon tomorrow. Bring water and friends.",
        "The ministry's internal memo contradicts yesterday's press release.",
        "Checkpoint moved to the river bridge; avoid the east entrance.",
        "Donations for legal aid accepted at the usual place.",
        "Live thread: counting irregularities at polling station 14.",
        "They cut the fiber on Elm street, use the mesh relay.",
        "Tomorrow we publish the full document set. Mirror everything.",
        "Medics needed near the old theatre after 18:00.",
    ];

    println!("submitting {} posts through Atom ...", posts.len());
    let (board, output) = run_microblog_round(&driver, &posts, &mut rng).expect("round");

    println!("\n--- bulletin board ({} posts) ---", board.len());
    for post in &board.posts {
        println!("[exit group {}] {}", post.published_by, post.text);
    }

    println!(
        "\nsearch for \"publish\": {} hit(s)",
        board.search("publish").len()
    );
    println!(
        "round stats: {} ciphertexts routed, compute {:.2?}, network (simulated) {:.2?}",
        output.routed_ciphertexts,
        output.timings.total_compute,
        output.timings.network_critical_path
    );
}
