//! Fault tolerance (§4.5): a many-trust deployment keeps running when a
//! server fails mid-round, and recovers from a catastrophic multi-server
//! failure using buddy-group escrow.
//!
//! Run with: `cargo run --release --example fault_tolerance`

use rand::rngs::StdRng;
use rand::SeedableRng;

use atom::core::config::AtomConfig;
use atom::core::faults::{escrow_group_shares, recover_group};
use atom::core::message::make_trap_submission;
use atom::core::round::RoundDriver;
use atom::setup_round;
use atom::topology::groups::{required_group_size, GroupSecurityParams};

fn main() {
    let mut rng = StdRng::seed_from_u64(3);

    // Production sizing from Appendix B: how large must groups be?
    for h in [1usize, 2, 4] {
        let k = required_group_size(&GroupSecurityParams::paper_defaults(h)).unwrap();
        println!("h = {h} honest servers required  ->  group size k = {k}");
    }

    // A scaled-down many-trust deployment: groups of 4 with threshold 3,
    // i.e. each group tolerates one failure without any recovery protocol.
    let mut config = AtomConfig::test_default();
    config.num_servers = 12;
    config.group_size = 4;
    config.required_honest = 2;
    config.num_groups = 3;
    config.iterations = 3;
    let setup = setup_round(&config, &mut rng).expect("setup");

    // Escrow every group's shares with its buddy group before the round.
    let escrows: Vec<_> = setup
        .groups
        .iter()
        .map(|group| {
            let buddy = &setup.groups[setup.buddies[group.id][0]];
            escrow_group_shares(group, buddy, &mut rng).expect("escrow")
        })
        .collect();

    // One server dies mid-round: the round still completes.
    let failed_server = setup.groups[0].members[3];
    println!("\nserver {failed_server} fails; groups fall back to threshold participation");
    let driver = RoundDriver::new(setup).with_failures(vec![failed_server]);
    let submissions: Vec<_> = (0..6)
        .map(|i| {
            let gid = i % config.num_groups;
            make_trap_submission(
                gid,
                &driver.setup().groups[gid].public_key,
                &driver.setup().trustees.public_key,
                config.round,
                format!("message {i}").as_bytes(),
                config.message_len,
                &mut rng,
            )
            .unwrap()
            .0
        })
        .collect();
    let output = driver
        .run_trap_round(&submissions, &mut rng)
        .expect("round survives");
    println!(
        "round completed despite the failure: {} messages delivered",
        output.plaintexts.len()
    );

    // Catastrophe: group 0 loses two servers (more than it tolerates).
    let group = &driver.setup().groups[0];
    let dead = vec![group.members[0], group.members[1]];
    println!("\ngroup 0 loses servers {dead:?} (more than h-1 = 1)");
    assert!(group.participating(&dead).is_err());

    // Recovery: replacements fetch the escrowed shares from the buddy group.
    let recovered = recover_group(group, &escrows[0], &[(0, 900), (1, 901)]).expect("recovery");
    println!(
        "buddy-group recovery installed replacement servers {:?}; group key unchanged: {}",
        &recovered.members[..2],
        recovered.public_key == group.public_key
    );
    println!(
        "recovered group can participate again: {:?}",
        recovered.participating(&[]).is_ok()
    );
}
