//! # atom
//!
//! Umbrella crate for the Rust reproduction of
//! *Atom: Horizontally Scaling Strong Anonymity* (Kwon, Corrigan-Gibbs,
//! Devadas, Ford — SOSP 2017).
//!
//! This crate re-exports the workspace members so applications can depend on
//! a single crate:
//!
//! * [`crypto`] — rerandomizable ElGamal with out-of-order re-encryption,
//!   NIZKs (including the verifiable shuffle), DKG/threshold keys, CCA2
//!   hybrid encryption, SHA-3 and ChaCha20-Poly1305 from scratch.
//! * [`topology`] — permutation networks, group sizing and formation.
//! * [`net`] — the in-process transport substrate and latency models.
//! * [`core`] — the Atom protocol: clients, groups, rounds, trustees,
//!   fault tolerance and blame.
//! * [`runtime`] — the parallel group-actor execution engine with
//!   barrier-free pipelined mixing and multi-round execution.
//! * [`apps`] — microblogging and dialing built on the public API.
//! * [`baselines`] — simplified Riposte and Vuvuzela/Alpenhorn comparators.
//! * [`sim`] — the calibrated large-scale deployment simulator.
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench` for
//! the per-table/figure reproduction harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use atom_apps as apps;
pub use atom_baselines as baselines;
pub use atom_core as core;
pub use atom_crypto as crypto;
pub use atom_net as net;
pub use atom_runtime as runtime;
pub use atom_sim as sim;
pub use atom_topology as topology;

pub use atom_core::{
    make_nizk_submission, make_trap_submission, setup_round, AtomConfig, AtomError, AtomResult,
    Defense, RoundDriver, RoundOutput, TopologyKind,
};
