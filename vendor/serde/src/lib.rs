//! Offline stand-in for `serde`.
//!
//! This repository builds in an environment with no crates.io access, so the
//! real `serde` cannot be fetched. Nothing in the workspace serializes through
//! serde at runtime (the wire formats are hand-rolled), but many types carry
//! `#[derive(Serialize, Deserialize)]` for API fidelity with the upstream
//! ecosystem. This stand-in keeps those derives compiling:
//!
//! * [`Serialize`] and [`Deserialize`] are marker traits with blanket
//!   implementations covering every type.
//! * The derive macros (from the sibling `serde_derive` stand-in) emit no
//!   code at all.
//!
//! If real serialization is ever needed, swap this vendored crate for the
//! real `serde` by restoring registry access; no source changes are required.

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

/// Mirror of `serde::de` exposing the owned-deserialization marker.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Mirror of `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}

pub use serde_derive::{Deserialize, Serialize};
