//! Offline stand-in for `rand` 0.8.
//!
//! The build environment has no crates.io access, so this crate reimplements
//! the (small) slice of the `rand` 0.8 API the workspace uses:
//!
//! * [`RngCore`], [`CryptoRng`], [`SeedableRng`] and the [`Rng`] extension
//!   trait (`gen_range`, `gen_bool`, `fill`).
//! * [`rngs::StdRng`] — a deterministic seedable generator (xoshiro256\*\*
//!   with splitmix64 seeding). The *stream* differs from upstream `rand`'s
//!   ChaCha12-based `StdRng`, which is explicitly permitted: upstream
//!   documents `StdRng` as non-portable across versions. All determinism
//!   guarantees in this workspace are relative to this implementation.
//! * [`rngs::OsRng`] — entropy from `/dev/urandom`, falling back to a
//!   time-seeded generator when unavailable.
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates.
//!
//! Swapping back to the real `rand` requires no source changes anywhere in
//! the workspace (deterministic test vectors would change, as they do across
//! upstream `StdRng` revisions).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of randomness (mirror of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Marker for cryptographically secure generators (mirror of
/// `rand_core::CryptoRng`).
pub trait CryptoRng {}

impl<R: CryptoRng + ?Sized> CryptoRng for &mut R {}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a 64-bit seed (splitmix64-expanded).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> T;
}

fn uniform_u64(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling to avoid modulo bias.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + uniform_u64(rng, span + 1) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience extension methods over [`RngCore`] (mirror of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{CryptoRng, RngCore, SeedableRng};

    /// Deterministic seedable generator (xoshiro256\*\*). See the crate docs
    /// for the deliberate stream difference from upstream `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    impl CryptoRng for StdRng {}

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().unwrap());
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            Self { s }
        }
    }

    /// Entropy from the operating system (`/dev/urandom`), with a
    /// time-seeded fallback for environments without a device tree.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct OsRng;

    fn os_entropy() -> u64 {
        use std::io::Read;
        if let Ok(mut f) = std::fs::File::open("/dev/urandom") {
            let mut buf = [0u8; 8];
            if f.read_exact(&mut buf).is_ok() {
                return u64::from_le_bytes(buf);
            }
        }
        use std::time::{SystemTime, UNIX_EPOCH};
        let now = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or_default();
        now.as_nanos() as u64 ^ 0x5851_f42d_4c95_7f2d
    }

    impl RngCore for OsRng {
        fn next_u32(&mut self) -> u32 {
            (os_entropy() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            os_entropy()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut local = StdRng::seed_from_u64(os_entropy());
            local.fill_bytes(dest);
        }
    }

    impl CryptoRng for OsRng {}
}

/// Sequence-related helpers (mirror of `rand::seq`).
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Extension trait adding shuffling and sampling to slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = SampleRange::sample(0..=i, rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item> {
            if self.is_empty() {
                None
            } else {
                let i = SampleRange::sample(0..self.len(), rng);
                self.get(i)
            }
        }
    }
}

/// Re-export mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{OsRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{CryptoRng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20usize);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0..=5usize);
            assert!(w <= 5);
            let f = rng.gen_range(-0.5..0.5f64);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
