//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides the `parking_lot` API shape the workspace uses — [`Mutex`] and
//! [`RwLock`] whose lock methods do not return poison `Result`s — plus a
//! [`Condvar`] implemented over the standard-library primitive. One deliberate
//! deviation: `Condvar::wait` uses the guard-consuming `std` signature rather
//! than `parking_lot`'s `&mut guard` one (bridging the two safely requires a
//! sentinel guard value that `std` cannot provide). Workspace code therefore
//! only uses the lock types from this crate — condvar users go straight to
//! `std::sync` — so swapping the real `parking_lot` back in needs no source
//! changes.

#![forbid(unsafe_code)]

use std::sync::{self, PoisonError};
use std::time::Duration;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive (mirror of `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock (mirror of `parking_lot::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A condition variable over [`Mutex`] guards.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Blocks until notified, releasing the guard while waiting and
    /// reacquiring it before returning.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(PoisonError::into_inner)
    }

    /// Blocks until notified or `timeout` elapses. The boolean is `true` if
    /// the wait timed out.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let (guard, result) = self
            .0
            .wait_timeout(guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        (guard, result.timed_out())
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0);
        let held = m.lock();
        assert!(m.try_lock().is_none());
        drop(held);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let clone = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cv) = &*clone;
            let mut started = lock.lock();
            while !*started {
                started = cv.wait(started);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        handle.join().unwrap();
    }
}
