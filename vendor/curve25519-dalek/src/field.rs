//! 256-bit modular arithmetic for moduli of the form `2^k − c` (small `c`).
//!
//! Both moduli used by this crate — the group prime `p = 2^255 − 46545` and
//! the scalar prime `q = 2^254 − 23273` — admit fast reduction because
//! `2^256 mod m` is a small constant (`FOLD`): a 512-bit product folds down
//! with two multiply-accumulate passes and at most a few conditional
//! subtractions.

/// A 256-bit unsigned integer in four little-endian 64-bit limbs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub struct U256(pub [u64; 4]);

impl U256 {
    /// The value 0.
    pub const ZERO: U256 = U256([0; 4]);
    /// The value 1.
    pub const ONE: U256 = U256([1, 0, 0, 0]);

    /// Builds a value from a `u64`.
    pub const fn from_u64(v: u64) -> U256 {
        U256([v, 0, 0, 0])
    }

    /// Builds a value from a `u128`.
    pub const fn from_u128(v: u128) -> U256 {
        U256([v as u64, (v >> 64) as u64, 0, 0])
    }

    /// Parses canonical little-endian bytes.
    pub fn from_le_bytes(bytes: &[u8; 32]) -> U256 {
        let mut limbs = [0u64; 4];
        for (i, limb) in limbs.iter_mut().enumerate() {
            *limb = u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().unwrap());
        }
        U256(limbs)
    }

    /// Canonical little-endian byte representation.
    pub fn to_le_bytes(self) -> [u8; 32] {
        let mut bytes = [0u8; 32];
        for (i, limb) in self.0.iter().enumerate() {
            bytes[i * 8..(i + 1) * 8].copy_from_slice(&limb.to_le_bytes());
        }
        bytes
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 4]
    }

    /// `self >= other` as integers.
    pub fn geq(&self, other: &U256) -> bool {
        for i in (0..4).rev() {
            if self.0[i] != other.0[i] {
                return self.0[i] > other.0[i];
            }
        }
        true
    }

    /// Full addition with carry-out.
    pub fn add_carry(&self, other: &U256) -> (U256, bool) {
        let mut limbs = [0u64; 4];
        let mut carry = 0u64;
        for (i, limb) in limbs.iter_mut().enumerate() {
            let sum = self.0[i] as u128 + other.0[i] as u128 + carry as u128;
            *limb = sum as u64;
            carry = (sum >> 64) as u64;
        }
        (U256(limbs), carry != 0)
    }

    /// Full subtraction with borrow-out.
    pub fn sub_borrow(&self, other: &U256) -> (U256, bool) {
        let mut limbs = [0u64; 4];
        let mut borrow = 0u64;
        for (i, limb) in limbs.iter_mut().enumerate() {
            let (d1, b1) = self.0[i].overflowing_sub(other.0[i]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *limb = d2;
            borrow = (b1 || b2) as u64;
        }
        (U256(limbs), borrow != 0)
    }

    /// Adds a small value with carry-out.
    pub fn add_small(&self, v: u64) -> (U256, bool) {
        self.add_carry(&U256::from_u64(v))
    }

    /// The bit at position `i` (little-endian).
    pub fn bit(&self, i: usize) -> bool {
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }
}

/// A prime modulus `m` with `2^256 ≡ fold (mod m)` for a small `fold`.
#[derive(Clone, Copy, Debug)]
pub struct Modulus {
    /// The modulus.
    pub modulus: U256,
    /// `2^256 mod modulus` (fits far below one limb).
    pub fold: u64,
}

impl Modulus {
    /// Creates a modulus descriptor.
    pub const fn new(modulus: U256, fold: u64) -> Self {
        Self { modulus, fold }
    }

    /// Reduces a value below `2^256` into canonical `[0, m)` form.
    fn canonical(&self, mut v: U256) -> U256 {
        // v < 2^256 < 4m for both moduli, so a handful of subtractions
        // suffice.
        while v.geq(&self.modulus) {
            v = v.sub_borrow(&self.modulus).0;
        }
        v
    }

    /// `a + b mod m` for canonical inputs.
    pub fn add(&self, a: &U256, b: &U256) -> U256 {
        let (mut sum, carry) = a.add_carry(b);
        if carry {
            let (folded, again) = sum.add_small(self.fold);
            debug_assert!(!again);
            sum = folded;
        }
        self.canonical(sum)
    }

    /// `a − b mod m` for canonical inputs.
    pub fn sub(&self, a: &U256, b: &U256) -> U256 {
        let (diff, borrow) = a.sub_borrow(b);
        if borrow {
            diff.add_carry(&self.modulus).0
        } else {
            diff
        }
    }

    /// `−a mod m` for canonical input.
    pub fn neg(&self, a: &U256) -> U256 {
        if a.is_zero() {
            U256::ZERO
        } else {
            self.modulus.sub_borrow(a).0
        }
    }

    /// `a · b mod m` for canonical inputs.
    pub fn mul(&self, a: &U256, b: &U256) -> U256 {
        // Schoolbook 4×4 → 8-limb product.
        let mut w = [0u64; 8];
        for i in 0..4 {
            let mut carry: u128 = 0;
            for j in 0..4 {
                let t = w[i + j] as u128 + a.0[i] as u128 * b.0[j] as u128 + carry;
                w[i + j] = t as u64;
                carry = t >> 64;
            }
            w[i + 4] = carry as u64;
        }
        self.reduce_wide(&w)
    }

    /// Reduces an arbitrary 512-bit value (eight little-endian limbs).
    pub fn reduce_wide(&self, w: &[u64; 8]) -> U256 {
        // Pass 1: value = lo + hi · fold (2^256 ≡ fold).
        let mut t = [0u64; 5];
        let mut carry: u128 = 0;
        for i in 0..4 {
            let v = w[i] as u128 + w[i + 4] as u128 * self.fold as u128 + carry;
            t[i] = v as u64;
            carry = v >> 64;
        }
        t[4] = carry as u64;

        // Pass 2: fold the (tiny) fifth limb back in. t[4] · fold stays far
        // below 2^64 because both factors are below 2^20.
        let (mut r, carry) = U256([t[0], t[1], t[2], t[3]]).add_small(t[4] * self.fold);
        if carry {
            let (folded, again) = r.add_small(self.fold);
            debug_assert!(!again);
            r = folded;
        }
        self.canonical(r)
    }

    /// Reduces 64 little-endian bytes (a 512-bit value) modulo `m`.
    pub fn reduce_bytes_wide(&self, bytes: &[u8; 64]) -> U256 {
        let mut w = [0u64; 8];
        for (i, limb) in w.iter_mut().enumerate() {
            *limb = u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().unwrap());
        }
        self.reduce_wide(&w)
    }

    /// `base^exp mod m` by square-and-multiply.
    pub fn pow(&self, base: &U256, exp: &U256) -> U256 {
        let mut acc = U256::ONE;
        let mut started = false;
        for i in (0..256).rev() {
            if started {
                acc = self.mul(&acc, &acc);
            }
            if exp.bit(i) {
                if started {
                    acc = self.mul(&acc, base);
                } else {
                    acc = *base;
                    started = true;
                }
            }
        }
        if started {
            acc
        } else {
            U256::ONE
        }
    }

    /// `a^(−1) mod m` via Fermat (requires `m` prime, `a ≠ 0`).
    pub fn inv(&self, a: &U256) -> U256 {
        let exp = self.modulus.sub_borrow(&U256::from_u64(2)).0;
        self.pow(a, &exp)
    }
}

/// The group prime `p = 2^255 − 46545`.
pub const P: Modulus = Modulus::new(
    U256([
        0xffff_ffff_ffff_4a2f,
        0xffff_ffff_ffff_ffff,
        0xffff_ffff_ffff_ffff,
        0x7fff_ffff_ffff_ffff,
    ]),
    2 * 46545,
);

/// The scalar prime `q = (p − 1) / 2 = 2^254 − 23273`.
pub const Q: Modulus = Modulus::new(
    U256([
        0xffff_ffff_ffff_a517,
        0xffff_ffff_ffff_ffff,
        0xffff_ffff_ffff_ffff,
        0x3fff_ffff_ffff_ffff,
    ]),
    4 * 23273,
);

/// True iff `v` is a non-zero quadratic residue modulo `p` (Euler's
/// criterion: `v^((p−1)/2) = 1`).
pub fn is_group_element(v: &U256) -> bool {
    if v.is_zero() || !P.modulus.geq(v) || *v == P.modulus {
        return false;
    }
    P.pow(v, &Q.modulus) == U256::ONE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let a = U256([u64::MAX, 5, 0, 1]);
        let b = U256([7, 0, u64::MAX, 0]);
        let sum = P.add(&a, &b);
        assert_eq!(P.sub(&sum, &b), a);
        assert_eq!(P.sub(&sum, &a), b);
    }

    #[test]
    fn mul_matches_small_values() {
        let a = U256::from_u64(1 << 40);
        let b = U256::from_u64(1 << 30);
        assert_eq!(P.mul(&a, &b), U256::from_u128(1u128 << 70));
    }

    #[test]
    fn fold_constant_is_correct() {
        // 2^255 ≡ 46545 (mod p): compute 2^255 via repeated doubling.
        let mut v = U256::ONE;
        for _ in 0..255 {
            v = P.add(&v, &v);
        }
        assert_eq!(v, U256::from_u64(46545));
        // And mod q: 2^254 ≡ 23273.
        let mut v = U256::ONE;
        for _ in 0..254 {
            v = Q.add(&v, &v);
        }
        assert_eq!(v, U256::from_u64(23273));
    }

    #[test]
    fn fermat_inverse() {
        let a = U256([12345, 678, 9, 0]);
        let inv = P.inv(&a);
        assert_eq!(P.mul(&a, &inv), U256::ONE);
        let inv_q = Q.inv(&a);
        assert_eq!(Q.mul(&a, &inv_q), U256::ONE);
    }

    #[test]
    fn squares_are_residues() {
        for base in [2u64, 3, 5, 12345, 987654321] {
            let v = U256::from_u64(base);
            let sq = P.mul(&v, &v);
            assert!(is_group_element(&sq), "{base}^2 must be a QR");
        }
        assert!(!is_group_element(&U256::ZERO));
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let base = U256::from_u64(4);
        let mut expected = U256::ONE;
        for _ in 0..17 {
            expected = P.mul(&expected, &base);
        }
        assert_eq!(P.pow(&base, &U256::from_u64(17)), expected);
        assert_eq!(P.pow(&base, &U256::ZERO), U256::ONE);
    }
}
