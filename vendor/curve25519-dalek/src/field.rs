//! 256-bit modular arithmetic for moduli of the form `2^k − c` (small `c`).
//!
//! Both moduli used by this crate — the group prime `p = 2^255 − 46545` and
//! the scalar prime `q = 2^254 − 23273` — admit fast reduction because
//! `2^256 mod m` is a small constant (`FOLD`): a 512-bit product folds down
//! with two multiply-accumulate passes and at most a few conditional
//! subtractions.

/// A 256-bit unsigned integer in four little-endian 64-bit limbs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub struct U256(pub [u64; 4]);

impl U256 {
    /// The value 0.
    pub const ZERO: U256 = U256([0; 4]);
    /// The value 1.
    pub const ONE: U256 = U256([1, 0, 0, 0]);

    /// Builds a value from a `u64`.
    pub const fn from_u64(v: u64) -> U256 {
        U256([v, 0, 0, 0])
    }

    /// Builds a value from a `u128`.
    pub const fn from_u128(v: u128) -> U256 {
        U256([v as u64, (v >> 64) as u64, 0, 0])
    }

    /// Parses canonical little-endian bytes.
    pub fn from_le_bytes(bytes: &[u8; 32]) -> U256 {
        let mut limbs = [0u64; 4];
        for (i, limb) in limbs.iter_mut().enumerate() {
            *limb = u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().unwrap());
        }
        U256(limbs)
    }

    /// Canonical little-endian byte representation.
    pub fn to_le_bytes(self) -> [u8; 32] {
        let mut bytes = [0u8; 32];
        for (i, limb) in self.0.iter().enumerate() {
            bytes[i * 8..(i + 1) * 8].copy_from_slice(&limb.to_le_bytes());
        }
        bytes
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 4]
    }

    /// `self >= other` as integers.
    pub fn geq(&self, other: &U256) -> bool {
        for i in (0..4).rev() {
            if self.0[i] != other.0[i] {
                return self.0[i] > other.0[i];
            }
        }
        true
    }

    /// Full addition with carry-out.
    pub fn add_carry(&self, other: &U256) -> (U256, bool) {
        let mut limbs = [0u64; 4];
        let mut carry = 0u64;
        for (i, limb) in limbs.iter_mut().enumerate() {
            let sum = self.0[i] as u128 + other.0[i] as u128 + carry as u128;
            *limb = sum as u64;
            carry = (sum >> 64) as u64;
        }
        (U256(limbs), carry != 0)
    }

    /// Full subtraction with borrow-out.
    pub fn sub_borrow(&self, other: &U256) -> (U256, bool) {
        let mut limbs = [0u64; 4];
        let mut borrow = 0u64;
        for (i, limb) in limbs.iter_mut().enumerate() {
            let (d1, b1) = self.0[i].overflowing_sub(other.0[i]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *limb = d2;
            borrow = (b1 || b2) as u64;
        }
        (U256(limbs), borrow != 0)
    }

    /// Adds a small value with carry-out.
    pub fn add_small(&self, v: u64) -> (U256, bool) {
        self.add_carry(&U256::from_u64(v))
    }

    /// The bit at position `i` (little-endian).
    pub fn bit(&self, i: usize) -> bool {
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of significant bits: the position of the highest set bit plus
    /// one, or zero for the value zero. Skips leading zero limbs, so short
    /// values cost proportionally less in the exponentiation loops below.
    pub fn bits(&self) -> usize {
        for i in (0..4).rev() {
            if self.0[i] != 0 {
                return i * 64 + 64 - self.0[i].leading_zeros() as usize;
            }
        }
        0
    }

    /// The 4-bit window (nibble) at position `i` (little-endian, `i < 64`).
    pub fn nibble(&self, i: usize) -> usize {
        ((self.0[i / 16] >> ((i % 16) * 4)) & 0xf) as usize
    }

    /// The `width`-bit window starting at bit `pos` (little-endian,
    /// `width ≤ 16`); bits at or above 256 read as zero. This is the digit
    /// extraction of the Pippenger bucket method, whose window width is
    /// chosen from the term count rather than fixed at four bits.
    pub fn window(&self, pos: usize, width: usize) -> usize {
        debug_assert!((1..=16).contains(&width));
        let limb = pos / 64;
        if limb >= 4 {
            return 0;
        }
        let shift = pos % 64;
        let mut v = self.0[limb] >> shift;
        if shift + width > 64 && limb + 1 < 4 {
            v |= self.0[limb + 1] << (64 - shift);
        }
        (v as usize) & ((1 << width) - 1)
    }
}

/// `−m⁻¹ mod 2^64` for odd `m` (Newton–Hensel lifting: each iteration
/// doubles the number of correct low bits, starting from the trivial
/// inverse modulo 2).
const fn neg_inv_u64(m: u64) -> u64 {
    let mut x: u64 = 1;
    let mut i = 0;
    while i < 6 {
        x = x.wrapping_mul(2u64.wrapping_sub(m.wrapping_mul(x)));
        i += 1;
    }
    x.wrapping_neg()
}

/// A prime modulus `m` with `2^256 ≡ fold (mod m)` for a small `fold`.
#[derive(Clone, Copy, Debug)]
pub struct Modulus {
    /// The modulus.
    pub modulus: U256,
    /// `2^256 mod modulus` (fits far below one limb).
    pub fold: u64,
    /// `−modulus⁻¹ mod 2^64`, the Montgomery reduction constant.
    pub m_prime: u64,
}

impl Modulus {
    /// Creates a modulus descriptor.
    pub const fn new(modulus: U256, fold: u64) -> Self {
        Self {
            modulus,
            fold,
            m_prime: neg_inv_u64(modulus.0[0]),
        }
    }

    /// Reduces a value below `2^256` into canonical `[0, m)` form.
    fn canonical(&self, mut v: U256) -> U256 {
        // v < 2^256 < 4m for both moduli, so a handful of subtractions
        // suffice.
        while v.geq(&self.modulus) {
            v = v.sub_borrow(&self.modulus).0;
        }
        v
    }

    /// `a + b mod m` for canonical inputs.
    pub fn add(&self, a: &U256, b: &U256) -> U256 {
        let (mut sum, carry) = a.add_carry(b);
        if carry {
            let (folded, again) = sum.add_small(self.fold);
            debug_assert!(!again);
            sum = folded;
        }
        self.canonical(sum)
    }

    /// `a − b mod m` for canonical inputs.
    pub fn sub(&self, a: &U256, b: &U256) -> U256 {
        let (diff, borrow) = a.sub_borrow(b);
        if borrow {
            diff.add_carry(&self.modulus).0
        } else {
            diff
        }
    }

    /// `−a mod m` for canonical input.
    pub fn neg(&self, a: &U256) -> U256 {
        if a.is_zero() {
            U256::ZERO
        } else {
            self.modulus.sub_borrow(a).0
        }
    }

    /// `a · b mod m` for canonical inputs.
    pub fn mul(&self, a: &U256, b: &U256) -> U256 {
        // Schoolbook 4×4 → 8-limb product.
        let mut w = [0u64; 8];
        for i in 0..4 {
            let mut carry: u128 = 0;
            for j in 0..4 {
                let t = w[i + j] as u128 + a.0[i] as u128 * b.0[j] as u128 + carry;
                w[i + j] = t as u64;
                carry = t >> 64;
            }
            w[i + 4] = carry as u64;
        }
        self.reduce_wide(&w)
    }

    /// Reduces an arbitrary 512-bit value (eight little-endian limbs).
    pub fn reduce_wide(&self, w: &[u64; 8]) -> U256 {
        // Pass 1: value = lo + hi · fold (2^256 ≡ fold).
        let mut t = [0u64; 5];
        let mut carry: u128 = 0;
        for i in 0..4 {
            let v = w[i] as u128 + w[i + 4] as u128 * self.fold as u128 + carry;
            t[i] = v as u64;
            carry = v >> 64;
        }
        t[4] = carry as u64;

        // Pass 2: fold the (tiny) fifth limb back in. t[4] · fold stays far
        // below 2^64 because both factors are below 2^20.
        let (mut r, carry) = U256([t[0], t[1], t[2], t[3]]).add_small(t[4] * self.fold);
        if carry {
            let (folded, again) = r.add_small(self.fold);
            debug_assert!(!again);
            r = folded;
        }
        self.canonical(r)
    }

    /// Reduces 64 little-endian bytes (a 512-bit value) modulo `m`.
    pub fn reduce_bytes_wide(&self, bytes: &[u8; 64]) -> U256 {
        let mut w = [0u64; 8];
        for (i, limb) in w.iter_mut().enumerate() {
            *limb = u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().unwrap());
        }
        self.reduce_wide(&w)
    }

    /// `a² mod m` for canonical input. Exploits the symmetry of the square
    /// (off-diagonal partial products computed once and doubled), saving
    /// roughly a third of the 64×64 multiplies of [`Self::mul`]. The
    /// exponentiation loops below are dominated by squarings.
    pub fn sqr(&self, a: &U256) -> U256 {
        // Off-diagonal products a_i·a_j for i < j.
        let mut w = [0u64; 8];
        for i in 0..3 {
            let mut carry: u128 = 0;
            for j in (i + 1)..4 {
                let t = w[i + j] as u128 + a.0[i] as u128 * a.0[j] as u128 + carry;
                w[i + j] = t as u64;
                carry = t >> 64;
            }
            w[i + 4] = carry as u64;
        }
        // Double them (the top bit cannot carry out: the cross-product sum
        // is below 2^510).
        let mut carry = 0u64;
        for limb in w.iter_mut() {
            let d = ((*limb as u128) << 1) | carry as u128;
            *limb = d as u64;
            carry = (d >> 64) as u64;
        }
        debug_assert_eq!(carry, 0);
        // Add the diagonal a_i².
        let mut carry: u128 = 0;
        for i in 0..4 {
            let d = a.0[i] as u128 * a.0[i] as u128;
            let v = w[2 * i] as u128 + (d as u64) as u128 + carry;
            w[2 * i] = v as u64;
            carry = v >> 64;
            let v = w[2 * i + 1] as u128 + (d >> 64) + carry;
            w[2 * i + 1] = v as u64;
            carry = v >> 64;
        }
        debug_assert_eq!(carry, 0);
        self.reduce_wide(&w)
    }

    /// Montgomery form of `a`: `a · 2^256 mod m`. Since `2^256 ≡ fold`, this
    /// is a single small multiplication.
    pub fn to_mont(&self, a: &U256) -> U256 {
        self.mul(a, &U256::from_u64(self.fold))
    }

    /// Converts back from Montgomery form: `a · 2^{−256} mod m`.
    pub fn from_mont(&self, a: &U256) -> U256 {
        let mut w = [0u64; 8];
        w[..4].copy_from_slice(&a.0);
        self.redc(&w)
    }

    /// Montgomery multiplication: for inputs in Montgomery form, returns the
    /// Montgomery form of the product (`a · b · 2^{−256} mod m`).
    ///
    /// Kept for reference and benchmarking: for these special moduli the
    /// `2^256 ≡ fold` reduction of [`Self::mul`] needs ~20 word multiplies
    /// against REDC's ~36, so the hot paths use the fold form. See
    /// `atom_crypto::batch` for the measurement.
    pub fn mont_mul(&self, a: &U256, b: &U256) -> U256 {
        let mut w = [0u64; 8];
        for i in 0..4 {
            let mut carry: u128 = 0;
            for j in 0..4 {
                let t = w[i + j] as u128 + a.0[i] as u128 * b.0[j] as u128 + carry;
                w[i + j] = t as u64;
                carry = t >> 64;
            }
            w[i + 4] = carry as u64;
        }
        self.redc(&w)
    }

    /// Montgomery reduction (REDC) of a 512-bit value: `w · 2^{−256} mod m`.
    fn redc(&self, w: &[u64; 8]) -> U256 {
        let m = &self.modulus.0;
        let mut t = [0u64; 9];
        t[..8].copy_from_slice(w);
        for i in 0..4 {
            let u = t[i].wrapping_mul(self.m_prime);
            let mut carry: u128 = 0;
            for j in 0..4 {
                let v = t[i + j] as u128 + u as u128 * m[j] as u128 + carry;
                t[i + j] = v as u64;
                carry = v >> 64;
            }
            let mut k = i + 4;
            while carry != 0 {
                let v = t[k] as u128 + carry;
                t[k] = v as u64;
                carry = v >> 64;
                k += 1;
            }
        }
        // The reduced value is t[4..8] plus a possible ninth-limb carry,
        // which folds back in via 2^256 ≡ fold.
        let (mut r, carry) = {
            let base = U256([t[4], t[5], t[6], t[7]]);
            if t[8] != 0 {
                base.add_small(t[8] * self.fold)
            } else {
                (base, false)
            }
        };
        if carry {
            let (folded, again) = r.add_small(self.fold);
            debug_assert!(!again);
            r = folded;
        }
        self.canonical(r)
    }

    /// `base^exp mod m` by 4-bit fixed-window exponentiation.
    ///
    /// Skips leading zero windows entirely (a 17-bit exponent costs five
    /// windows, not 64) and uses the dedicated squaring. Very short
    /// exponents take a plain square-and-multiply ladder to avoid paying
    /// for the window table.
    pub fn pow(&self, base: &U256, exp: &U256) -> U256 {
        let bits = exp.bits();
        if bits == 0 {
            return U256::ONE;
        }
        if bits <= 8 {
            // Table build (14 multiplies) would dominate: plain ladder.
            let mut acc = self.canonical(*base);
            for i in (0..bits - 1).rev() {
                acc = self.sqr(&acc);
                if exp.bit(i) {
                    acc = self.mul(&acc, base);
                }
            }
            return acc;
        }

        // tbl[j] = base^j for j in 0..16.
        let mut tbl = [U256::ONE; 16];
        tbl[1] = self.canonical(*base);
        for j in 2..16 {
            tbl[j] = self.mul(&tbl[j - 1], &tbl[1]);
        }

        let top = (bits - 1) / 4;
        let mut acc = tbl[exp.nibble(top)];
        for i in (0..top).rev() {
            acc = self.sqr(&acc);
            acc = self.sqr(&acc);
            acc = self.sqr(&acc);
            acc = self.sqr(&acc);
            let d = exp.nibble(i);
            if d != 0 {
                acc = self.mul(&acc, &tbl[d]);
            }
        }
        acc
    }

    /// Simultaneous multi-exponentiation: `∏_k bases[k]^exps[k] mod m`.
    ///
    /// Dispatches on the term count: small products use Straus/Shamir
    /// interleaving (per-base 16-entry tables amortize well), large ones the
    /// Pippenger bucket method, whose per-term cost keeps falling as the
    /// window width grows with `n`. The crossover was placed by measuring
    /// both paths on this backend (see `PIPPENGER_CUTOFF`).
    pub fn multi_pow(&self, bases: &[U256], exps: &[U256]) -> U256 {
        if bases.len() >= PIPPENGER_CUTOFF {
            self.multi_pow_bucket(bases, exps)
        } else {
            self.multi_pow_straus(bases, exps)
        }
    }

    /// Straus/Shamir interleaving multi-exponentiation.
    ///
    /// All exponents share one squaring chain, so `n` joint exponentiations
    /// cost one chain of squarings plus window multiplies instead of `n`
    /// full chains. Bases with a zero exponent (or equal to one) contribute
    /// nothing and are skipped, including their table build.
    pub fn multi_pow_straus(&self, bases: &[U256], exps: &[U256]) -> U256 {
        assert_eq!(
            bases.len(),
            exps.len(),
            "multi_pow needs one exponent per base"
        );
        let mut tables: Vec<([U256; 16], &U256)> = Vec::with_capacity(bases.len());
        let mut max_bits = 0;
        for (base, exp) in bases.iter().zip(exps.iter()) {
            let bits = exp.bits();
            if bits == 0 || *base == U256::ONE {
                continue;
            }
            let mut tbl = [U256::ONE; 16];
            tbl[1] = self.canonical(*base);
            for j in 2..16 {
                tbl[j] = self.mul(&tbl[j - 1], &tbl[1]);
            }
            tables.push((tbl, exp));
            max_bits = max_bits.max(bits);
        }
        if max_bits == 0 {
            return U256::ONE;
        }

        let top = (max_bits - 1) / 4;
        let mut acc = U256::ONE;
        let mut started = false;
        for i in (0..=top).rev() {
            if started {
                acc = self.sqr(&acc);
                acc = self.sqr(&acc);
                acc = self.sqr(&acc);
                acc = self.sqr(&acc);
            }
            for (tbl, exp) in &tables {
                let d = exp.nibble(i);
                if d != 0 {
                    if started {
                        acc = self.mul(&acc, &tbl[d]);
                    } else {
                        acc = tbl[d];
                        started = true;
                    }
                }
            }
        }
        acc
    }

    /// Pippenger bucket-method multi-exponentiation.
    ///
    /// Processes the exponents in `c`-bit windows from the top. Per window,
    /// each base is multiplied into the bucket of its digit (one multiply per
    /// term — no per-base tables), then the buckets are aggregated with the
    /// running-product trick: suffix products weight bucket `d` by `d`
    /// without any exponentiation, at ~2·2^c multiplies. With `c ≈ log2 n`
    /// the per-term cost shrinks as the product grows, which is where this
    /// overtakes Straus' fixed ~3 window multiplies per term per window.
    pub fn multi_pow_bucket(&self, bases: &[U256], exps: &[U256]) -> U256 {
        assert_eq!(
            bases.len(),
            exps.len(),
            "multi_pow needs one exponent per base"
        );
        let mut live: Vec<(U256, &U256)> = Vec::with_capacity(bases.len());
        let mut max_bits = 0;
        for (base, exp) in bases.iter().zip(exps.iter()) {
            let bits = exp.bits();
            if bits == 0 || *base == U256::ONE {
                continue;
            }
            live.push((self.canonical(*base), exp));
            max_bits = max_bits.max(bits);
        }
        if max_bits == 0 {
            return U256::ONE;
        }

        // Window width ≈ log2(n): balances the bucket pass (n multiplies)
        // against the 2·2^c aggregation pass.
        let n = live.len();
        let c = if n < 64 {
            4
        } else if n < 256 {
            6
        } else if n < 1024 {
            7
        } else {
            8
        };

        let windows = max_bits.div_ceil(c);
        let mut buckets = vec![U256::ONE; 1 << c];
        let mut used = vec![false; 1 << c];
        let mut acc = U256::ONE;
        let mut started = false;
        for w in (0..windows).rev() {
            if started {
                for _ in 0..c {
                    acc = self.sqr(&acc);
                }
            }
            for slot in used.iter_mut() {
                *slot = false;
            }
            let pos = w * c;
            for (base, exp) in &live {
                let d = exp.window(pos, c);
                if d == 0 {
                    continue;
                }
                if used[d] {
                    buckets[d] = self.mul(&buckets[d], base);
                } else {
                    buckets[d] = *base;
                    used[d] = true;
                }
            }
            // window_sum = ∏_d buckets[d]^d via descending suffix products.
            let mut running: Option<U256> = None;
            let mut window_sum: Option<U256> = None;
            for d in (1..1usize << c).rev() {
                if used[d] {
                    running = Some(match running {
                        Some(r) => self.mul(&r, &buckets[d]),
                        None => buckets[d],
                    });
                }
                if let Some(r) = &running {
                    window_sum = Some(match window_sum {
                        Some(s) => self.mul(&s, r),
                        None => *r,
                    });
                }
            }
            if let Some(s) = window_sum {
                if started {
                    acc = self.mul(&acc, &s);
                } else {
                    acc = s;
                    started = true;
                }
            }
        }
        acc
    }

    /// `a^(−1) mod m` via Fermat (requires `m` prime, `a ≠ 0`).
    pub fn inv(&self, a: &U256) -> U256 {
        let exp = self.modulus.sub_borrow(&U256::from_u64(2)).0;
        self.pow(a, &exp)
    }

    /// Batch inversion by Montgomery's trick: `n` inverses for the price of
    /// one Fermat exponentiation plus `3(n−1)` multiplications. Zero inputs
    /// are passed through as zero (they have no inverse).
    pub fn inv_batch(&self, values: &[U256]) -> Vec<U256> {
        // Prefix products over the non-zero values.
        let mut prefix = Vec::with_capacity(values.len());
        let mut acc = U256::ONE;
        for v in values {
            prefix.push(acc);
            if !v.is_zero() {
                acc = self.mul(&acc, v);
            }
        }
        // One inversion of the full product, then peel backwards.
        let mut inv_acc = if acc == U256::ONE {
            U256::ONE
        } else {
            self.inv(&acc)
        };
        let mut out = vec![U256::ZERO; values.len()];
        for (i, v) in values.iter().enumerate().rev() {
            if v.is_zero() {
                continue;
            }
            out[i] = self.mul(&inv_acc, &prefix[i]);
            inv_acc = self.mul(&inv_acc, v);
        }
        out
    }
}

/// A precomputed fixed-base exponentiation table: `rows[i][j]` holds
/// `base^(j · 16^i)`, so `base^e` is a product of at most 64 table entries —
/// no runtime squarings at all. Building the table costs ~64·15 multiplies
/// and pays for itself after three or four exponentiations; the group
/// generator and per-round DKG public keys are reused thousands of times.
#[derive(Clone, Debug)]
pub struct PowTable {
    rows: Vec<[U256; 16]>,
}

impl PowTable {
    /// Builds the table for `base` under `modulus`.
    pub fn new(modulus: &Modulus, base: &U256) -> Self {
        let mut rows = Vec::with_capacity(64);
        let mut row_base = modulus.canonical(*base);
        for _ in 0..64 {
            let mut row = [U256::ONE; 16];
            row[1] = row_base;
            for j in 2..16 {
                row[j] = modulus.mul(&row[j - 1], &row_base);
            }
            // Next row's unit: base^(16^{i+1}) = (base^(16^i))^16.
            row_base = modulus.mul(&row[15], &row[1]);
            rows.push(row);
        }
        Self { rows }
    }

    /// `base^exp mod m` from the table.
    pub fn pow(&self, modulus: &Modulus, exp: &U256) -> U256 {
        let bits = exp.bits();
        if bits == 0 {
            return U256::ONE;
        }
        let top = (bits - 1) / 4;
        let mut acc = U256::ONE;
        let mut started = false;
        for (i, row) in self.rows.iter().enumerate().take(top + 1) {
            let d = exp.nibble(i);
            if d != 0 {
                if started {
                    acc = modulus.mul(&acc, &row[d]);
                } else {
                    acc = row[d];
                    started = true;
                }
            }
        }
        acc
    }
}

/// Term count at which [`Modulus::multi_pow`] switches from Straus
/// interleaving to the Pippenger bucket method. Straus costs ~3 multiplies
/// per term per 4-bit window plus a 14-multiply table build; Pippenger costs
/// one multiply per term per `c`-bit window plus a `2·2^c` aggregation that
/// amortizes across terms. Measured on this backend the bucket path pulls
/// ahead just below 200 full-width terms (sooner for the 128-bit RLC
/// coefficients the batch verifier feeds it, but the dispatch only sees the
/// term count, so the crossover is placed for the conservative case).
pub const PIPPENGER_CUTOFF: usize = 192;

/// The group prime `p = 2^255 − 46545`.
pub const P: Modulus = Modulus::new(
    U256([
        0xffff_ffff_ffff_4a2f,
        0xffff_ffff_ffff_ffff,
        0xffff_ffff_ffff_ffff,
        0x7fff_ffff_ffff_ffff,
    ]),
    2 * 46545,
);

/// The scalar prime `q = (p − 1) / 2 = 2^254 − 23273`.
pub const Q: Modulus = Modulus::new(
    U256([
        0xffff_ffff_ffff_a517,
        0xffff_ffff_ffff_ffff,
        0xffff_ffff_ffff_ffff,
        0x3fff_ffff_ffff_ffff,
    ]),
    4 * 23273,
);

/// True iff `v` is a non-zero quadratic residue modulo `p` (Euler's
/// criterion: `v^((p−1)/2) = 1`).
pub fn is_group_element(v: &U256) -> bool {
    if v.is_zero() || !P.modulus.geq(v) || *v == P.modulus {
        return false;
    }
    P.pow(v, &Q.modulus) == U256::ONE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let a = U256([u64::MAX, 5, 0, 1]);
        let b = U256([7, 0, u64::MAX, 0]);
        let sum = P.add(&a, &b);
        assert_eq!(P.sub(&sum, &b), a);
        assert_eq!(P.sub(&sum, &a), b);
    }

    #[test]
    fn mul_matches_small_values() {
        let a = U256::from_u64(1 << 40);
        let b = U256::from_u64(1 << 30);
        assert_eq!(P.mul(&a, &b), U256::from_u128(1u128 << 70));
    }

    #[test]
    fn fold_constant_is_correct() {
        // 2^255 ≡ 46545 (mod p): compute 2^255 via repeated doubling.
        let mut v = U256::ONE;
        for _ in 0..255 {
            v = P.add(&v, &v);
        }
        assert_eq!(v, U256::from_u64(46545));
        // And mod q: 2^254 ≡ 23273.
        let mut v = U256::ONE;
        for _ in 0..254 {
            v = Q.add(&v, &v);
        }
        assert_eq!(v, U256::from_u64(23273));
    }

    #[test]
    fn fermat_inverse() {
        let a = U256([12345, 678, 9, 0]);
        let inv = P.inv(&a);
        assert_eq!(P.mul(&a, &inv), U256::ONE);
        let inv_q = Q.inv(&a);
        assert_eq!(Q.mul(&a, &inv_q), U256::ONE);
    }

    #[test]
    fn squares_are_residues() {
        for base in [2u64, 3, 5, 12345, 987654321] {
            let v = U256::from_u64(base);
            let sq = P.mul(&v, &v);
            assert!(is_group_element(&sq), "{base}^2 must be a QR");
        }
        assert!(!is_group_element(&U256::ZERO));
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let base = U256::from_u64(4);
        let mut expected = U256::ONE;
        for _ in 0..17 {
            expected = P.mul(&expected, &base);
        }
        assert_eq!(P.pow(&base, &U256::from_u64(17)), expected);
        assert_eq!(P.pow(&base, &U256::ZERO), U256::ONE);
    }

    /// Reference square-and-multiply over all 256 bits (the pre-window
    /// implementation), used to pin the optimized ladder's semantics.
    fn pow_naive(m: &Modulus, base: &U256, exp: &U256) -> U256 {
        let mut acc = U256::ONE;
        for i in (0..256).rev() {
            acc = m.mul(&acc, &acc);
            if exp.bit(i) {
                acc = m.mul(&acc, base);
            }
        }
        acc
    }

    #[test]
    fn windowed_pow_matches_naive_for_short_exponents() {
        // Regression for the leading-zero-limb skip: a 17-bit exponent must
        // not be treated as a 256-bit one (and must still be correct).
        let base = U256([0x1234_5678_9abc_def0, 77, 3, 0]);
        let exp17 = U256::from_u64(0x1_5a3b); // 17 bits
        assert_eq!(exp17.bits(), 17);
        assert_eq!(P.pow(&base, &exp17), pow_naive(&P, &base, &exp17));
        // Boundary cases around the short-ladder cutoff and word edges.
        for e in [1u64, 2, 3, 0xff, 0x100, 0x1_0000, u64::MAX] {
            let e = U256::from_u64(e);
            assert_eq!(P.pow(&base, &e), pow_naive(&P, &base, &e), "exp {e:?}");
            assert_eq!(Q.pow(&base, &e), pow_naive(&Q, &base, &e), "exp {e:?}");
        }
    }

    #[test]
    fn windowed_pow_matches_naive_for_full_width_exponents() {
        let base = U256([0xdead_beef, 0xfeed, 0x1357_9bdf_0246_8ace, 0x0fff]);
        for seed in 1u64..6 {
            let exp = U256([
                seed.wrapping_mul(0x9e37_79b9_7f4a_7c15),
                seed.wrapping_mul(0xbf58_476d_1ce4_e5b9),
                seed.wrapping_mul(0x94d0_49bb_1331_11eb),
                seed.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 2,
            ]);
            assert_eq!(P.pow(&base, &exp), pow_naive(&P, &base, &exp));
        }
    }

    #[test]
    fn sqr_matches_mul() {
        for seed in 0u64..8 {
            let a = U256([
                seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(3),
                seed.wrapping_mul(0xbf58_476d_1ce4_e5b9),
                !seed,
                seed << 40,
            ]);
            let a = P.reduce_wide(&[a.0[0], a.0[1], a.0[2], a.0[3], 0, 0, 0, 0]);
            assert_eq!(P.sqr(&a), P.mul(&a, &a));
            assert_eq!(Q.sqr(&a), Q.mul(&a, &a));
        }
    }

    #[test]
    fn montgomery_constants_and_roundtrip() {
        for m in [P, Q] {
            assert_eq!(
                m.modulus.0[0].wrapping_mul(m.m_prime.wrapping_neg()),
                1,
                "m_prime must invert the low limb"
            );
            let a = U256([0xabcdef, 42, 7, 0x1fff]);
            let a = m.canonical(a);
            assert_eq!(m.from_mont(&m.to_mont(&a)), a);
        }
    }

    #[test]
    fn montgomery_multiplication_matches_fold_multiplication() {
        let a = U256([99, 0xffff_ffff, 5, 0x0123_4567]);
        let b = U256([0xfedc_ba98, 1, u64::MAX, 0x7fff]);
        for m in [P, Q] {
            let (a, b) = (m.canonical(a), m.canonical(b));
            let mont = m.mont_mul(&m.to_mont(&a), &m.to_mont(&b));
            assert_eq!(m.from_mont(&mont), m.mul(&a, &b));
        }
    }

    #[test]
    fn batch_inversion_matches_individual_inverses() {
        let values: Vec<U256> = (1u64..10)
            .map(|i| U256([i * 12345, i, 0, i << 10]))
            .collect();
        let inverses = P.inv_batch(&values);
        for (v, inv) in values.iter().zip(inverses.iter()) {
            assert_eq!(P.mul(v, inv), U256::ONE);
            assert_eq!(*inv, P.inv(v));
        }
        // Zero entries pass through as zero without breaking neighbours.
        let with_zero = vec![values[0], U256::ZERO, values[1]];
        let inverses = Q.inv_batch(&with_zero);
        assert_eq!(inverses[1], U256::ZERO);
        assert_eq!(Q.mul(&with_zero[0], &inverses[0]), U256::ONE);
        assert_eq!(Q.mul(&with_zero[2], &inverses[2]), U256::ONE);
        assert!(P.inv_batch(&[]).is_empty());
    }

    #[test]
    fn multi_pow_matches_product_of_pows() {
        let bases = [
            U256::from_u64(4),
            U256([123, 456, 789, 0]),
            U256([0xdead, 0, 0xbeef, 0x3f]),
            U256::ONE,
        ];
        let exps = [
            U256::from_u64(17),
            U256([u64::MAX, u64::MAX, 1, 0]),
            U256::ZERO,
            U256::from_u64(999),
        ];
        let mut expected = U256::ONE;
        for (b, e) in bases.iter().zip(exps.iter()) {
            expected = P.mul(&expected, &P.pow(b, e));
        }
        assert_eq!(P.multi_pow(&bases, &exps), expected);
        assert_eq!(P.multi_pow(&[], &[]), U256::ONE);
    }

    /// Deterministic pseudo-random U256 stream (splitmix64 limbs) so the
    /// multi-exp property tests cover large products without a rand dep.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn random_u256(state: &mut u64) -> U256 {
        U256([
            splitmix(state),
            splitmix(state),
            splitmix(state),
            splitmix(state) >> 2,
        ])
    }

    #[test]
    fn multi_pow_bucket_matches_straus_across_crossover() {
        let mut state = 0x5eed_u64;
        // Sizes straddling PIPPENGER_CUTOFF, so both the straus-dispatched
        // and bucket-dispatched regimes are compared against each other and
        // against the naive per-term product.
        for n in [1usize, 2, 7, 50, 191, 192, 193, 320] {
            let mut bases: Vec<U256> = (0..n).map(|_| random_u256(&mut state)).collect();
            let mut exps: Vec<U256> = (0..n)
                .map(|i| {
                    if i % 7 == 0 {
                        U256::ZERO // zero exponents must be skipped
                    } else if i % 3 == 0 {
                        // short (128-bit) exponents: the RLC coefficient shape
                        U256([splitmix(&mut state), splitmix(&mut state), 0, 0])
                    } else {
                        random_u256(&mut state)
                    }
                })
                .collect();
            if n > 4 {
                bases[n - 1] = bases[0]; // duplicate base
                bases[n - 2] = U256::ONE; // identity base
                exps[n - 3] = U256::ONE; // tiny exponent
            }
            let straus = P.multi_pow_straus(&bases, &exps);
            let bucket = P.multi_pow_bucket(&bases, &exps);
            assert_eq!(straus, bucket, "straus vs bucket diverge at n={n}");
            assert_eq!(P.multi_pow(&bases, &exps), straus, "dispatch at n={n}");
            if n <= 50 {
                let mut expected = U256::ONE;
                for (b, e) in bases.iter().zip(exps.iter()) {
                    expected = P.mul(&expected, &P.pow(b, e));
                }
                assert_eq!(straus, expected, "naive product at n={n}");
            }
        }
    }

    #[test]
    fn multi_pow_bucket_edge_cases() {
        assert_eq!(P.multi_pow_bucket(&[], &[]), U256::ONE);
        // All-zero exponents and all-one bases contribute nothing.
        let bases = [U256::ONE, U256::from_u64(9), U256::ONE];
        let exps = [U256::from_u64(5), U256::ZERO, U256::from_u64(7)];
        assert_eq!(P.multi_pow_bucket(&bases, &exps), U256::ONE);
        // Window extraction across limb boundaries: exponents with bits
        // straddling the 64-bit limb edges.
        let straddle = U256([1u64 << 63, 0b101, 1u64 << 62, 0x3]);
        let base = [U256::from_u64(3)];
        let exp = [straddle];
        assert_eq!(P.multi_pow_bucket(&base, &exp), P.pow(&base[0], &exp[0]));
    }

    #[test]
    fn u256_window_matches_bits() {
        let v = U256([0xdead_beef_cafe_f00d, 0x0123_4567_89ab_cdef, u64::MAX, 0x7]);
        for width in [1usize, 4, 5, 7, 8, 13, 16] {
            for pos in (0..256).step_by(width) {
                let mut expected = 0usize;
                for b in 0..width {
                    if pos + b < 256 && v.bit(pos + b) {
                        expected |= 1 << b;
                    }
                }
                assert_eq!(v.window(pos, width), expected, "pos={pos} width={width}");
            }
        }
    }

    #[test]
    fn pow_table_matches_direct_pow() {
        let base = U256([0x1111, 0x2222, 0x3333, 0x0444]);
        let table = PowTable::new(&P, &base);
        for exp in [
            U256::ZERO,
            U256::ONE,
            U256::from_u64(0x1_5a3b),
            U256([u64::MAX, 0, u64::MAX, 0x0fff_ffff]),
            Q.modulus.sub_borrow(&U256::ONE).0,
        ] {
            assert_eq!(table.pow(&P, &exp), P.pow(&base, &exp), "exp {exp:?}");
        }
    }
}
