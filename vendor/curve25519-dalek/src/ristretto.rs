//! The group: quadratic residues modulo `p = 2^255 − 46545`, presented
//! through the additive `RistrettoPoint` API.

use core::iter::Sum;
use core::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};
use std::sync::OnceLock;

use rand::{CryptoRng, RngCore};

use crate::field::{is_group_element, PowTable, P, U256};
use crate::scalar::Scalar;
use crate::traits::Identity;

/// A group element (mirror of `curve25519_dalek::ristretto::RistrettoPoint`).
///
/// The additive notation of the API maps onto multiplicative arithmetic in
/// the residue group: `A + B` is `a·b mod p`, `s * A` is `a^s mod p`, and the
/// identity is the residue `1`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct RistrettoPoint(pub(crate) U256);

/// The canonical 32-byte encoding of a group element (mirror of
/// `CompressedRistretto`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct CompressedRistretto(pub [u8; 32]);

impl CompressedRistretto {
    /// The encoded bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// The encoded bytes, by value.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.0
    }

    /// Decodes the bytes if they denote a valid group element: a non-zero
    /// quadratic residue below `p`. About half of all 255-bit strings
    /// qualify, the property the try-and-increment message embedding in
    /// `atom-crypto` relies on.
    pub fn decompress(&self) -> Option<RistrettoPoint> {
        let v = U256::from_le_bytes(&self.0);
        if is_group_element(&v) {
            Some(RistrettoPoint(v))
        } else {
            None
        }
    }
}

impl RistrettoPoint {
    /// The canonical encoding of this element.
    pub fn compress(&self) -> CompressedRistretto {
        CompressedRistretto(self.0.to_le_bytes())
    }

    /// A uniformly random group element.
    pub fn random<R: RngCore + CryptoRng + ?Sized>(rng: &mut R) -> RistrettoPoint {
        let mut wide = [0u8; 64];
        rng.fill_bytes(&mut wide);
        RistrettoPoint::from_uniform_bytes(&wide)
    }

    /// Maps 64 uniform bytes onto the group (stand-in for the double
    /// Elligator map): reduce modulo `p` and square, which lands uniformly
    /// on the quadratic residues.
    pub fn from_uniform_bytes(bytes: &[u8; 64]) -> RistrettoPoint {
        let x = P.reduce_bytes_wide(bytes);
        if x.is_zero() {
            // Probability 2^-255; map to the basepoint rather than the
            // (invalid) zero residue.
            return crate::constants::RISTRETTO_BASEPOINT_POINT;
        }
        RistrettoPoint(P.mul(&x, &x))
    }

    fn scalar_mul(&self, scalar: &Scalar) -> RistrettoPoint {
        RistrettoPoint(P.pow(&self.0, &scalar.to_u256()))
    }

    fn group_inverse(&self) -> RistrettoPoint {
        RistrettoPoint(P.inv(&self.0))
    }

    /// Simultaneous multi-scalar multiplication (Straus/Shamir): computes
    /// `Σ scalars[k] · points[k]` with one shared doubling chain instead of
    /// one full chain per term. This is the workhorse behind the two-term
    /// verification checks and the batched proof verification in
    /// `atom-crypto`.
    pub fn multiscalar_mul(scalars: &[Scalar], points: &[RistrettoPoint]) -> RistrettoPoint {
        assert_eq!(
            scalars.len(),
            points.len(),
            "multiscalar_mul needs one scalar per point"
        );
        let exps: Vec<U256> = scalars.iter().map(|s| s.to_u256()).collect();
        let bases: Vec<U256> = points.iter().map(|p| p.0).collect();
        RistrettoPoint(P.multi_pow(&bases, &exps))
    }

    /// Variable-time alias of [`Self::multiscalar_mul`] (mirrors the dalek
    /// API split; this stand-in has no constant-time path to begin with).
    pub fn vartime_multiscalar_mul(
        scalars: &[Scalar],
        points: &[RistrettoPoint],
    ) -> RistrettoPoint {
        Self::multiscalar_mul(scalars, points)
    }

    /// Inverts every group element with one shared field inversion
    /// (Montgomery's trick); identity elements map to themselves.
    pub fn batch_negate(points: &[RistrettoPoint]) -> Vec<RistrettoPoint> {
        P.inv_batch(&points.iter().map(|p| p.0).collect::<Vec<_>>())
            .into_iter()
            .map(RistrettoPoint)
            .collect()
    }
}

impl Identity for RistrettoPoint {
    fn identity() -> RistrettoPoint {
        RistrettoPoint(U256::ONE)
    }
}

impl Default for RistrettoPoint {
    fn default() -> Self {
        <RistrettoPoint as Identity>::identity()
    }
}

macro_rules! point_binop_variants {
    ($trait:ident, $method:ident) => {
        impl<'a> $trait<RistrettoPoint> for &'a RistrettoPoint {
            type Output = RistrettoPoint;
            fn $method(self, rhs: RistrettoPoint) -> RistrettoPoint {
                self.$method(&rhs)
            }
        }
        impl<'b> $trait<&'b RistrettoPoint> for RistrettoPoint {
            type Output = RistrettoPoint;
            fn $method(self, rhs: &'b RistrettoPoint) -> RistrettoPoint {
                (&self).$method(rhs)
            }
        }
        impl $trait<RistrettoPoint> for RistrettoPoint {
            type Output = RistrettoPoint;
            fn $method(self, rhs: RistrettoPoint) -> RistrettoPoint {
                (&self).$method(&rhs)
            }
        }
    };
}

impl<'b> Add<&'b RistrettoPoint> for &RistrettoPoint {
    type Output = RistrettoPoint;
    fn add(self, rhs: &'b RistrettoPoint) -> RistrettoPoint {
        RistrettoPoint(P.mul(&self.0, &rhs.0))
    }
}
point_binop_variants!(Add, add);

impl<'b> Sub<&'b RistrettoPoint> for &RistrettoPoint {
    type Output = RistrettoPoint;
    fn sub(self, rhs: &'b RistrettoPoint) -> RistrettoPoint {
        RistrettoPoint(P.mul(&self.0, &rhs.group_inverse().0))
    }
}
point_binop_variants!(Sub, sub);

impl AddAssign<RistrettoPoint> for RistrettoPoint {
    fn add_assign(&mut self, rhs: RistrettoPoint) {
        *self = *self + rhs;
    }
}
impl<'a> AddAssign<&'a RistrettoPoint> for RistrettoPoint {
    fn add_assign(&mut self, rhs: &'a RistrettoPoint) {
        *self = *self + rhs;
    }
}
impl SubAssign<RistrettoPoint> for RistrettoPoint {
    fn sub_assign(&mut self, rhs: RistrettoPoint) {
        *self = *self - rhs;
    }
}
impl<'a> SubAssign<&'a RistrettoPoint> for RistrettoPoint {
    fn sub_assign(&mut self, rhs: &'a RistrettoPoint) {
        *self = *self - rhs;
    }
}

impl Neg for RistrettoPoint {
    type Output = RistrettoPoint;
    fn neg(self) -> RistrettoPoint {
        self.group_inverse()
    }
}
impl Neg for &RistrettoPoint {
    type Output = RistrettoPoint;
    fn neg(self) -> RistrettoPoint {
        self.group_inverse()
    }
}

impl Sum for RistrettoPoint {
    fn sum<I: Iterator<Item = RistrettoPoint>>(iter: I) -> RistrettoPoint {
        iter.fold(<RistrettoPoint as Identity>::identity(), |acc, x| acc + x)
    }
}
impl<'a> Sum<&'a RistrettoPoint> for RistrettoPoint {
    fn sum<I: Iterator<Item = &'a RistrettoPoint>>(iter: I) -> RistrettoPoint {
        iter.fold(<RistrettoPoint as Identity>::identity(), |acc, x| acc + x)
    }
}

macro_rules! scalar_point_mul {
    ($scalar:ty, $point:ty) => {
        impl Mul<$point> for $scalar {
            type Output = RistrettoPoint;
            fn mul(self, point: $point) -> RistrettoPoint {
                point.scalar_mul(&self)
            }
        }
        impl Mul<$scalar> for $point {
            type Output = RistrettoPoint;
            fn mul(self, scalar: $scalar) -> RistrettoPoint {
                self.scalar_mul(&scalar)
            }
        }
    };
}

scalar_point_mul!(Scalar, RistrettoPoint);
scalar_point_mul!(Scalar, &RistrettoPoint);
scalar_point_mul!(&Scalar, RistrettoPoint);
scalar_point_mul!(&Scalar, &RistrettoPoint);

/// A precomputed fixed-base table (mirror of `RistrettoBasepointTable`):
/// 4-bit windows of `point^(j·16^i)` so a fixed-base scalar multiplication
/// costs at most 64 group operations and **no squarings at all** — ~5–6×
/// cheaper than a cold windowed exponentiation.
///
/// The window table is built lazily on first use (so the `static` basepoint
/// table stays const-constructible) and shared across threads.
#[derive(Debug)]
pub struct RistrettoBasepointTable {
    pub(crate) point: RistrettoPoint,
    pub(crate) windows: OnceLock<PowTable>,
}

impl RistrettoBasepointTable {
    /// Builds a table for a basepoint.
    pub fn create(point: &RistrettoPoint) -> Self {
        Self {
            point: *point,
            windows: OnceLock::new(),
        }
    }

    /// The basepoint this table multiplies.
    pub fn basepoint(&self) -> RistrettoPoint {
        self.point
    }

    /// Fixed-base scalar multiplication through the precomputed windows.
    pub fn mul_scalar(&self, scalar: &Scalar) -> RistrettoPoint {
        let windows = self
            .windows
            .get_or_init(|| PowTable::new(&P, &self.point.0));
        RistrettoPoint(windows.pow(&P, &scalar.to_u256()))
    }
}

impl Clone for RistrettoBasepointTable {
    fn clone(&self) -> Self {
        let windows = OnceLock::new();
        if let Some(built) = self.windows.get() {
            let _ = windows.set(built.clone());
        }
        Self {
            point: self.point,
            windows,
        }
    }
}

impl<'b> Mul<&'b RistrettoBasepointTable> for &Scalar {
    type Output = RistrettoPoint;
    fn mul(self, table: &'b RistrettoBasepointTable) -> RistrettoPoint {
        table.mul_scalar(self)
    }
}
impl<'b> Mul<&'b RistrettoBasepointTable> for Scalar {
    type Output = RistrettoPoint;
    fn mul(self, table: &'b RistrettoBasepointTable) -> RistrettoPoint {
        table.mul_scalar(&self)
    }
}
impl<'b> Mul<&'b Scalar> for &RistrettoBasepointTable {
    type Output = RistrettoPoint;
    fn mul(self, scalar: &'b Scalar) -> RistrettoPoint {
        self.mul_scalar(scalar)
    }
}
impl Mul<Scalar> for &RistrettoBasepointTable {
    type Output = RistrettoPoint;
    fn mul(self, scalar: Scalar) -> RistrettoPoint {
        self.mul_scalar(&scalar)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::{RISTRETTO_BASEPOINT_POINT, RISTRETTO_BASEPOINT_TABLE};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn group_axioms_hold() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = RistrettoPoint::random(&mut rng);
        let b = RistrettoPoint::random(&mut rng);
        let c = RistrettoPoint::random(&mut rng);
        assert_eq!((a + b) + c, a + (b + c));
        assert_eq!(a + b, b + a);
        assert_eq!(a - a, RistrettoPoint::identity());
        assert_eq!(a + RistrettoPoint::identity(), a);
        assert_eq!(-(-a), a);
    }

    #[test]
    fn scalar_mul_is_a_homomorphism() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = RistrettoPoint::random(&mut rng);
        let x = Scalar::random(&mut rng);
        let y = Scalar::random(&mut rng);
        assert_eq!(x * a + y * a, (x + y) * a);
        assert_eq!(x * (y * a), (x * y) * a);
        assert_eq!(Scalar::ONE * a, a);
        assert_eq!(Scalar::ZERO * a, RistrettoPoint::identity());
    }

    #[test]
    fn compression_roundtrips() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..16 {
            let a = RistrettoPoint::random(&mut rng);
            let compressed = a.compress();
            let back = compressed.decompress().expect("valid encoding");
            assert_eq!(back, a);
            assert_eq!(back.compress().to_bytes(), compressed.to_bytes());
        }
    }

    #[test]
    fn invalid_encodings_rejected() {
        assert!(CompressedRistretto([0u8; 32]).decompress().is_none());
        let mut over = [0xffu8; 32];
        over[31] = 0xff; // ≥ p
        assert!(CompressedRistretto(over).decompress().is_none());
    }

    #[test]
    fn roughly_half_of_random_strings_decode() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut ok = 0;
        let total = 200;
        for _ in 0..total {
            let mut bytes = [0u8; 32];
            rng.fill_bytes(&mut bytes);
            bytes[31] &= 0x7e; // keep below 2^255 like the embedding layer
            if CompressedRistretto(bytes).decompress().is_some() {
                ok += 1;
            }
        }
        assert!(
            (60..=140).contains(&ok),
            "acceptance rate off: {ok}/{total}"
        );
    }

    #[test]
    fn basepoint_table_matches_direct_multiplication() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = Scalar::random(&mut rng);
        assert_eq!(x * RISTRETTO_BASEPOINT_TABLE, x * RISTRETTO_BASEPOINT_POINT);
        assert_eq!(
            RISTRETTO_BASEPOINT_TABLE.basepoint(),
            RISTRETTO_BASEPOINT_POINT
        );
    }

    #[test]
    fn created_table_matches_direct_multiplication_for_any_point() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..4 {
            let point = RistrettoPoint::random(&mut rng);
            let table = RistrettoBasepointTable::create(&point);
            let cloned = table.clone();
            for scalar in [
                Scalar::ZERO,
                Scalar::ONE,
                Scalar::from(0x1_5a3bu64),
                Scalar::random(&mut rng),
            ] {
                assert_eq!(table.mul_scalar(&scalar), scalar * point);
                assert_eq!(cloned.mul_scalar(&scalar), scalar * point);
            }
        }
    }

    #[test]
    fn multiscalar_mul_matches_naive_sum() {
        let mut rng = StdRng::seed_from_u64(9);
        let points: Vec<RistrettoPoint> =
            (0..7).map(|_| RistrettoPoint::random(&mut rng)).collect();
        let mut scalars: Vec<Scalar> = (0..7).map(|_| Scalar::random(&mut rng)).collect();
        scalars[2] = Scalar::ZERO;
        scalars[5] = -scalars[5];
        let expected: RistrettoPoint = scalars.iter().zip(points.iter()).map(|(s, p)| s * p).sum();
        assert_eq!(RistrettoPoint::multiscalar_mul(&scalars, &points), expected);
        assert_eq!(
            RistrettoPoint::vartime_multiscalar_mul(&[], &[]),
            RistrettoPoint::identity()
        );
    }

    #[test]
    fn batch_negate_matches_individual_negation() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut points: Vec<RistrettoPoint> =
            (0..5).map(|_| RistrettoPoint::random(&mut rng)).collect();
        points.push(RistrettoPoint::identity());
        let negated = RistrettoPoint::batch_negate(&points);
        for (p, n) in points.iter().zip(negated.iter()) {
            assert_eq!(*n, -p);
            assert_eq!(p + n, RistrettoPoint::identity());
        }
    }
}
