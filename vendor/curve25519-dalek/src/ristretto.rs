//! The group: quadratic residues modulo `p = 2^255 − 46545`, presented
//! through the additive `RistrettoPoint` API.

use core::iter::Sum;
use core::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

use rand::{CryptoRng, RngCore};

use crate::field::{is_group_element, P, U256};
use crate::scalar::Scalar;
use crate::traits::Identity;

/// A group element (mirror of `curve25519_dalek::ristretto::RistrettoPoint`).
///
/// The additive notation of the API maps onto multiplicative arithmetic in
/// the residue group: `A + B` is `a·b mod p`, `s * A` is `a^s mod p`, and the
/// identity is the residue `1`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct RistrettoPoint(pub(crate) U256);

/// The canonical 32-byte encoding of a group element (mirror of
/// `CompressedRistretto`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct CompressedRistretto(pub [u8; 32]);

impl CompressedRistretto {
    /// The encoded bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// The encoded bytes, by value.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.0
    }

    /// Decodes the bytes if they denote a valid group element: a non-zero
    /// quadratic residue below `p`. About half of all 255-bit strings
    /// qualify, the property the try-and-increment message embedding in
    /// `atom-crypto` relies on.
    pub fn decompress(&self) -> Option<RistrettoPoint> {
        let v = U256::from_le_bytes(&self.0);
        if is_group_element(&v) {
            Some(RistrettoPoint(v))
        } else {
            None
        }
    }
}

impl RistrettoPoint {
    /// The canonical encoding of this element.
    pub fn compress(&self) -> CompressedRistretto {
        CompressedRistretto(self.0.to_le_bytes())
    }

    /// A uniformly random group element.
    pub fn random<R: RngCore + CryptoRng + ?Sized>(rng: &mut R) -> RistrettoPoint {
        let mut wide = [0u8; 64];
        rng.fill_bytes(&mut wide);
        RistrettoPoint::from_uniform_bytes(&wide)
    }

    /// Maps 64 uniform bytes onto the group (stand-in for the double
    /// Elligator map): reduce modulo `p` and square, which lands uniformly
    /// on the quadratic residues.
    pub fn from_uniform_bytes(bytes: &[u8; 64]) -> RistrettoPoint {
        let x = P.reduce_bytes_wide(bytes);
        if x.is_zero() {
            // Probability 2^-255; map to the basepoint rather than the
            // (invalid) zero residue.
            return crate::constants::RISTRETTO_BASEPOINT_POINT;
        }
        RistrettoPoint(P.mul(&x, &x))
    }

    fn scalar_mul(&self, scalar: &Scalar) -> RistrettoPoint {
        RistrettoPoint(P.pow(&self.0, &scalar.to_u256()))
    }

    fn group_inverse(&self) -> RistrettoPoint {
        RistrettoPoint(P.inv(&self.0))
    }
}

impl Identity for RistrettoPoint {
    fn identity() -> RistrettoPoint {
        RistrettoPoint(U256::ONE)
    }
}

impl Default for RistrettoPoint {
    fn default() -> Self {
        <RistrettoPoint as Identity>::identity()
    }
}

macro_rules! point_binop_variants {
    ($trait:ident, $method:ident) => {
        impl<'a> $trait<RistrettoPoint> for &'a RistrettoPoint {
            type Output = RistrettoPoint;
            fn $method(self, rhs: RistrettoPoint) -> RistrettoPoint {
                self.$method(&rhs)
            }
        }
        impl<'b> $trait<&'b RistrettoPoint> for RistrettoPoint {
            type Output = RistrettoPoint;
            fn $method(self, rhs: &'b RistrettoPoint) -> RistrettoPoint {
                (&self).$method(rhs)
            }
        }
        impl $trait<RistrettoPoint> for RistrettoPoint {
            type Output = RistrettoPoint;
            fn $method(self, rhs: RistrettoPoint) -> RistrettoPoint {
                (&self).$method(&rhs)
            }
        }
    };
}

impl<'b> Add<&'b RistrettoPoint> for &RistrettoPoint {
    type Output = RistrettoPoint;
    fn add(self, rhs: &'b RistrettoPoint) -> RistrettoPoint {
        RistrettoPoint(P.mul(&self.0, &rhs.0))
    }
}
point_binop_variants!(Add, add);

impl<'b> Sub<&'b RistrettoPoint> for &RistrettoPoint {
    type Output = RistrettoPoint;
    fn sub(self, rhs: &'b RistrettoPoint) -> RistrettoPoint {
        RistrettoPoint(P.mul(&self.0, &rhs.group_inverse().0))
    }
}
point_binop_variants!(Sub, sub);

impl AddAssign<RistrettoPoint> for RistrettoPoint {
    fn add_assign(&mut self, rhs: RistrettoPoint) {
        *self = *self + rhs;
    }
}
impl<'a> AddAssign<&'a RistrettoPoint> for RistrettoPoint {
    fn add_assign(&mut self, rhs: &'a RistrettoPoint) {
        *self = *self + rhs;
    }
}
impl SubAssign<RistrettoPoint> for RistrettoPoint {
    fn sub_assign(&mut self, rhs: RistrettoPoint) {
        *self = *self - rhs;
    }
}
impl<'a> SubAssign<&'a RistrettoPoint> for RistrettoPoint {
    fn sub_assign(&mut self, rhs: &'a RistrettoPoint) {
        *self = *self - rhs;
    }
}

impl Neg for RistrettoPoint {
    type Output = RistrettoPoint;
    fn neg(self) -> RistrettoPoint {
        self.group_inverse()
    }
}
impl Neg for &RistrettoPoint {
    type Output = RistrettoPoint;
    fn neg(self) -> RistrettoPoint {
        self.group_inverse()
    }
}

impl Sum for RistrettoPoint {
    fn sum<I: Iterator<Item = RistrettoPoint>>(iter: I) -> RistrettoPoint {
        iter.fold(<RistrettoPoint as Identity>::identity(), |acc, x| acc + x)
    }
}
impl<'a> Sum<&'a RistrettoPoint> for RistrettoPoint {
    fn sum<I: Iterator<Item = &'a RistrettoPoint>>(iter: I) -> RistrettoPoint {
        iter.fold(<RistrettoPoint as Identity>::identity(), |acc, x| acc + x)
    }
}

macro_rules! scalar_point_mul {
    ($scalar:ty, $point:ty) => {
        impl Mul<$point> for $scalar {
            type Output = RistrettoPoint;
            fn mul(self, point: $point) -> RistrettoPoint {
                point.scalar_mul(&self)
            }
        }
        impl Mul<$scalar> for $point {
            type Output = RistrettoPoint;
            fn mul(self, scalar: $scalar) -> RistrettoPoint {
                self.scalar_mul(&scalar)
            }
        }
    };
}

scalar_point_mul!(Scalar, RistrettoPoint);
scalar_point_mul!(Scalar, &RistrettoPoint);
scalar_point_mul!(&Scalar, RistrettoPoint);
scalar_point_mul!(&Scalar, &RistrettoPoint);

/// Precomputed-basepoint stand-in: scalar multiplication against the fixed
/// basepoint (mirror of `RistrettoBasepointTable`).
#[derive(Clone, Copy, Debug)]
pub struct RistrettoBasepointTable {
    pub(crate) point: RistrettoPoint,
}

impl RistrettoBasepointTable {
    /// Builds a table for a basepoint.
    pub fn create(point: &RistrettoPoint) -> Self {
        Self { point: *point }
    }

    /// The basepoint this table multiplies.
    pub fn basepoint(&self) -> RistrettoPoint {
        self.point
    }
}

impl<'b> Mul<&'b RistrettoBasepointTable> for &Scalar {
    type Output = RistrettoPoint;
    fn mul(self, table: &'b RistrettoBasepointTable) -> RistrettoPoint {
        table.point.scalar_mul(self)
    }
}
impl<'b> Mul<&'b RistrettoBasepointTable> for Scalar {
    type Output = RistrettoPoint;
    fn mul(self, table: &'b RistrettoBasepointTable) -> RistrettoPoint {
        table.point.scalar_mul(&self)
    }
}
impl<'b> Mul<&'b Scalar> for &RistrettoBasepointTable {
    type Output = RistrettoPoint;
    fn mul(self, scalar: &'b Scalar) -> RistrettoPoint {
        self.point.scalar_mul(scalar)
    }
}
impl Mul<Scalar> for &RistrettoBasepointTable {
    type Output = RistrettoPoint;
    fn mul(self, scalar: Scalar) -> RistrettoPoint {
        self.point.scalar_mul(&scalar)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::{RISTRETTO_BASEPOINT_POINT, RISTRETTO_BASEPOINT_TABLE};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn group_axioms_hold() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = RistrettoPoint::random(&mut rng);
        let b = RistrettoPoint::random(&mut rng);
        let c = RistrettoPoint::random(&mut rng);
        assert_eq!((a + b) + c, a + (b + c));
        assert_eq!(a + b, b + a);
        assert_eq!(a - a, RistrettoPoint::identity());
        assert_eq!(a + RistrettoPoint::identity(), a);
        assert_eq!(-(-a), a);
    }

    #[test]
    fn scalar_mul_is_a_homomorphism() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = RistrettoPoint::random(&mut rng);
        let x = Scalar::random(&mut rng);
        let y = Scalar::random(&mut rng);
        assert_eq!(x * a + y * a, (x + y) * a);
        assert_eq!(x * (y * a), (x * y) * a);
        assert_eq!(Scalar::ONE * a, a);
        assert_eq!(Scalar::ZERO * a, RistrettoPoint::identity());
    }

    #[test]
    fn compression_roundtrips() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..16 {
            let a = RistrettoPoint::random(&mut rng);
            let compressed = a.compress();
            let back = compressed.decompress().expect("valid encoding");
            assert_eq!(back, a);
            assert_eq!(back.compress().to_bytes(), compressed.to_bytes());
        }
    }

    #[test]
    fn invalid_encodings_rejected() {
        assert!(CompressedRistretto([0u8; 32]).decompress().is_none());
        let mut over = [0xffu8; 32];
        over[31] = 0xff; // ≥ p
        assert!(CompressedRistretto(over).decompress().is_none());
    }

    #[test]
    fn roughly_half_of_random_strings_decode() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut ok = 0;
        let total = 200;
        for _ in 0..total {
            let mut bytes = [0u8; 32];
            rng.fill_bytes(&mut bytes);
            bytes[31] &= 0x7e; // keep below 2^255 like the embedding layer
            if CompressedRistretto(bytes).decompress().is_some() {
                ok += 1;
            }
        }
        assert!(
            (60..=140).contains(&ok),
            "acceptance rate off: {ok}/{total}"
        );
    }

    #[test]
    fn basepoint_table_matches_direct_multiplication() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = Scalar::random(&mut rng);
        assert_eq!(x * RISTRETTO_BASEPOINT_TABLE, x * RISTRETTO_BASEPOINT_POINT);
        assert_eq!(
            RISTRETTO_BASEPOINT_TABLE.basepoint(),
            RISTRETTO_BASEPOINT_POINT
        );
    }
}
