//! Fixed group constants (mirror of `curve25519_dalek::constants`).

use std::sync::OnceLock;

use crate::field::U256;
use crate::ristretto::{RistrettoBasepointTable, RistrettoPoint};

/// The basepoint: the residue `4 = 2²`, a quadratic residue generating the
/// whole prime-order group.
pub const RISTRETTO_BASEPOINT_POINT: RistrettoPoint = RistrettoPoint(U256([4, 0, 0, 0]));

static BASEPOINT_TABLE: RistrettoBasepointTable = RistrettoBasepointTable {
    point: RISTRETTO_BASEPOINT_POINT,
    windows: OnceLock::new(),
};

/// The precomputed basepoint table (4-bit fixed windows, built lazily on
/// first use and shared process-wide).
pub static RISTRETTO_BASEPOINT_TABLE: &RistrettoBasepointTable = &BASEPOINT_TABLE;
