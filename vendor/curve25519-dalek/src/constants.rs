//! Fixed group constants (mirror of `curve25519_dalek::constants`).

use crate::field::U256;
use crate::ristretto::{RistrettoBasepointTable, RistrettoPoint};

/// The basepoint: the residue `4 = 2²`, a quadratic residue generating the
/// whole prime-order group.
pub const RISTRETTO_BASEPOINT_POINT: RistrettoPoint = RistrettoPoint(U256([4, 0, 0, 0]));

/// The "precomputed" basepoint table (scalar multiplication against the
/// fixed basepoint).
pub static RISTRETTO_BASEPOINT_TABLE: &RistrettoBasepointTable = &RistrettoBasepointTable {
    point: RISTRETTO_BASEPOINT_POINT,
};
