//! Scalars: the field `Z_q` for the group order `q = 2^254 − 23273`.

use core::iter::Sum;
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use rand::{CryptoRng, RngCore};

use crate::field::{Q, U256};

/// An element of the scalar field `Z_q`, stored as canonical little-endian
/// bytes (mirror of `curve25519_dalek::scalar::Scalar`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub struct Scalar {
    bytes: [u8; 32],
}

impl Scalar {
    /// The scalar 0.
    pub const ZERO: Scalar = Scalar { bytes: [0; 32] };
    /// The scalar 1.
    pub const ONE: Scalar = Scalar {
        bytes: {
            let mut b = [0u8; 32];
            b[0] = 1;
            b
        },
    };

    pub(crate) fn from_u256(v: U256) -> Scalar {
        Scalar {
            bytes: v.to_le_bytes(),
        }
    }

    pub(crate) fn to_u256(self) -> U256 {
        U256::from_le_bytes(&self.bytes)
    }

    /// A uniformly random scalar.
    pub fn random<R: RngCore + CryptoRng + ?Sized>(rng: &mut R) -> Scalar {
        let mut wide = [0u8; 64];
        rng.fill_bytes(&mut wide);
        Scalar::from_bytes_mod_order_wide(&wide)
    }

    /// Reduces 32 little-endian bytes modulo `q`.
    pub fn from_bytes_mod_order(bytes: [u8; 32]) -> Scalar {
        let mut wide = [0u8; 64];
        wide[..32].copy_from_slice(&bytes);
        Scalar::from_bytes_mod_order_wide(&wide)
    }

    /// Reduces 64 little-endian bytes modulo `q`.
    pub fn from_bytes_mod_order_wide(input: &[u8; 64]) -> Scalar {
        Scalar::from_u256(Q.reduce_bytes_wide(input))
    }

    /// The canonical little-endian byte encoding.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.bytes
    }

    /// The canonical little-endian byte encoding, by value.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.bytes
    }

    /// The multiplicative inverse (panics on zero, as a misuse guard).
    pub fn invert(&self) -> Scalar {
        assert!(!self.to_u256().is_zero(), "inverting the zero scalar");
        Scalar::from_u256(Q.inv(&self.to_u256()))
    }

    /// Inverts every scalar with Montgomery's trick: one Fermat
    /// exponentiation plus three multiplications per element, instead of one
    /// exponentiation each. Panics on zero, like [`Self::invert`].
    pub fn batch_invert(scalars: &[Scalar]) -> Vec<Scalar> {
        let values: Vec<crate::field::U256> = scalars
            .iter()
            .map(|s| {
                let v = s.to_u256();
                assert!(!v.is_zero(), "inverting the zero scalar");
                v
            })
            .collect();
        Q.inv_batch(&values)
            .into_iter()
            .map(Scalar::from_u256)
            .collect()
    }
}

macro_rules! scalar_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Scalar {
            fn from(v: $t) -> Scalar {
                // Any value below 2^128 is already canonical modulo
                // q ≈ 2^254.
                Scalar::from_u256(U256::from_u128(v as u128))
            }
        }
    )*};
}
scalar_from_uint!(u8, u16, u32, u64, u128);

macro_rules! scalar_binop {
    ($trait:ident, $method:ident, $op:ident) => {
        impl<'a, 'b> $trait<&'b Scalar> for &'a Scalar {
            type Output = Scalar;
            fn $method(self, rhs: &'b Scalar) -> Scalar {
                Scalar::from_u256(Q.$op(&self.to_u256(), &rhs.to_u256()))
            }
        }
        impl<'a> $trait<Scalar> for &'a Scalar {
            type Output = Scalar;
            fn $method(self, rhs: Scalar) -> Scalar {
                self.$method(&rhs)
            }
        }
        impl<'b> $trait<&'b Scalar> for Scalar {
            type Output = Scalar;
            fn $method(self, rhs: &'b Scalar) -> Scalar {
                (&self).$method(rhs)
            }
        }
        impl $trait<Scalar> for Scalar {
            type Output = Scalar;
            fn $method(self, rhs: Scalar) -> Scalar {
                (&self).$method(&rhs)
            }
        }
    };
}

scalar_binop!(Add, add, add);
scalar_binop!(Sub, sub, sub);
scalar_binop!(Mul, mul, mul);

impl AddAssign<Scalar> for Scalar {
    fn add_assign(&mut self, rhs: Scalar) {
        *self = *self + rhs;
    }
}
impl<'a> AddAssign<&'a Scalar> for Scalar {
    fn add_assign(&mut self, rhs: &'a Scalar) {
        *self = *self + rhs;
    }
}
impl SubAssign<Scalar> for Scalar {
    fn sub_assign(&mut self, rhs: Scalar) {
        *self = *self - rhs;
    }
}
impl<'a> SubAssign<&'a Scalar> for Scalar {
    fn sub_assign(&mut self, rhs: &'a Scalar) {
        *self = *self - rhs;
    }
}
impl MulAssign<Scalar> for Scalar {
    fn mul_assign(&mut self, rhs: Scalar) {
        *self = *self * rhs;
    }
}
impl<'a> MulAssign<&'a Scalar> for Scalar {
    fn mul_assign(&mut self, rhs: &'a Scalar) {
        *self = *self * rhs;
    }
}

impl Neg for Scalar {
    type Output = Scalar;
    fn neg(self) -> Scalar {
        Scalar::from_u256(Q.neg(&self.to_u256()))
    }
}
impl Neg for &Scalar {
    type Output = Scalar;
    fn neg(self) -> Scalar {
        -*self
    }
}

impl Sum for Scalar {
    fn sum<I: Iterator<Item = Scalar>>(iter: I) -> Scalar {
        iter.fold(Scalar::ZERO, |acc, x| acc + x)
    }
}
impl<'a> Sum<&'a Scalar> for Scalar {
    fn sum<I: Iterator<Item = &'a Scalar>>(iter: I) -> Scalar {
        iter.fold(Scalar::ZERO, |acc, x| acc + x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn field_axioms_hold() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..32 {
            let a = Scalar::random(&mut rng);
            let b = Scalar::random(&mut rng);
            let c = Scalar::random(&mut rng);
            assert_eq!((a + b) + c, a + (b + c));
            assert_eq!((a * b) * c, a * (b * c));
            assert_eq!(a * (b + c), a * b + a * c);
            assert_eq!(a - a, Scalar::ZERO);
            assert_eq!(a + (-a), Scalar::ZERO);
            assert_eq!(a * Scalar::ONE, a);
        }
    }

    #[test]
    fn inversion() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..8 {
            let a = Scalar::random(&mut rng);
            assert_eq!(a * a.invert(), Scalar::ONE);
        }
    }

    #[test]
    fn batch_inversion_matches_individual() {
        let mut rng = StdRng::seed_from_u64(3);
        let scalars: Vec<Scalar> = (0..9).map(|_| Scalar::random(&mut rng)).collect();
        let inverses = Scalar::batch_invert(&scalars);
        assert_eq!(inverses.len(), scalars.len());
        for (s, inv) in scalars.iter().zip(inverses.iter()) {
            assert_eq!(*inv, s.invert());
            assert_eq!(s * inv, Scalar::ONE);
        }
        assert!(Scalar::batch_invert(&[]).is_empty());
    }

    #[test]
    fn from_uint_roundtrip() {
        assert_eq!(Scalar::from(0u64), Scalar::ZERO);
        assert_eq!(Scalar::from(1u64), Scalar::ONE);
        assert_eq!(Scalar::from(5u64) + Scalar::from(7u64), Scalar::from(12u64));
        assert_eq!(Scalar::from(3u32) * Scalar::from(4u8), Scalar::from(12u16));
    }

    #[test]
    fn wide_reduction_is_uniform_in_range() {
        let wide = [0xffu8; 64];
        let s = Scalar::from_bytes_mod_order_wide(&wide);
        // Must be canonical: adding zero keeps it fixed.
        assert_eq!(s + Scalar::ZERO, s);
    }

    #[test]
    fn sum_of_scalars() {
        let xs = [Scalar::from(1u64), Scalar::from(2u64), Scalar::from(3u64)];
        let total: Scalar = xs.iter().sum();
        assert_eq!(total, Scalar::from(6u64));
        let total_owned: Scalar = xs.into_iter().sum();
        assert_eq!(total_owned, Scalar::from(6u64));
    }
}
