//! Offline stand-in for `curve25519-dalek`.
//!
//! This build environment has no crates.io access, so the real Ristretto255
//! implementation cannot be fetched. This crate reimplements the API surface
//! the workspace uses over a different prime-order group with the same
//! abstract properties:
//!
//! * **Group**: the quadratic residues modulo the 255-bit safe prime
//!   `p = 2^255 − 46545`, written additively to match the dalek API. The
//!   group has prime order `q = (p − 1) / 2 = 2^254 − 23273`, so every
//!   non-identity element is a generator and scalar arithmetic happens in
//!   the field `Z_q` exactly as with Ristretto's `Z_ℓ`.
//! * **Encoding**: an element is its canonical 32-byte little-endian
//!   residue. `decompress` accepts a byte string iff it denotes a non-zero
//!   quadratic residue below `p` — about half of all candidate strings —
//!   matching Ristretto's property that a constant fraction of random
//!   strings decode, which the message-embedding layer (`atom-crypto`'s
//!   try-and-increment encoder) relies on. `compress ∘ decompress` is the
//!   identity on valid encodings.
//! * **Basepoint**: the residue `4 = 2²`.
//!
//! Discrete logs in a ~255-bit Schnorr group are within reach of
//! well-resourced index-calculus attacks that the elliptic-curve group
//! resists, so this stand-in weakens concrete security while preserving
//! every algebraic identity (rerandomization, out-of-order re-encryption,
//! homomorphic proof relations) that the Atom reproduction exercises.
//! Swapping the real dalek crate back in requires no source changes.

#![forbid(unsafe_code)]

// Public so the workspace's microbenches can compare the raw field
// arithmetic paths (naive vs windowed vs Montgomery); the real dalek crate
// has no such module, and nothing outside benches may depend on it.
pub mod field;

pub mod constants;
pub mod ristretto;
pub mod scalar;
pub mod traits;

pub use ristretto::RistrettoPoint;
pub use scalar::Scalar;
