//! Trait mirrors of `curve25519_dalek::traits`.

/// Types with a distinguished identity element.
pub trait Identity {
    /// The identity element.
    fn identity() -> Self;
}

/// Types that can report whether they are the identity.
pub trait IsIdentity: Identity + Sized + PartialEq {
    /// True if `self` is the identity element.
    fn is_identity(&self) -> bool {
        *self == Self::identity()
    }
}

impl<T: Identity + PartialEq> IsIdentity for T {}
