//! Offline stand-in for `serde_derive`.
//!
//! The build environment for this repository has no access to crates.io, so
//! the real `serde`/`serde_derive` cannot be fetched. The vendored `serde`
//! crate provides blanket implementations of its marker traits, which means
//! the derive macros have nothing to generate: they accept the input (and any
//! `#[serde(...)]` attributes) and emit an empty token stream.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and emits nothing; the vendored `serde`
/// crate's blanket impl already covers the type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits nothing; the vendored `serde`
/// crate's blanket impl already covers the type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
