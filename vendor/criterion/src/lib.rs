//! Offline stand-in for `criterion`.
//!
//! Implements the slice of the criterion API the workspace benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher`] with `iter`/`iter_batched`,
//! [`BenchmarkId`], [`BatchSize`] and the `criterion_group!`/
//! `criterion_main!` macros — as a simple wall-clock runner: each benchmark
//! is warmed up once, timed over a fixed number of samples, and reported as
//! mean time per iteration on stdout. No statistics, plotting or baselines.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque hint preventing the optimizer from discarding a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How `iter_batched` amortizes setup cost (accepted and ignored; every
/// batch is of size one in this runner).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter value.
    pub fn new<P: fmt::Display>(function_name: impl Into<String>, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a parameter value alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iterations: u64,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self {
            samples,
            total: Duration::ZERO,
            iterations: 0,
        }
    }

    /// Times `routine` over the configured number of samples.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One untimed warm-up run.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iterations += 1;
        }
    }

    /// Times `routine` over fresh inputs produced by `setup` (setup time is
    /// not counted).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iterations += 1;
        }
    }

    /// Like [`Bencher::iter_batched`] but passes the input by reference.
    pub fn iter_batched_ref<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> O,
        _size: BatchSize,
    ) {
        let mut warm = setup();
        black_box(routine(&mut warm));
        for _ in 0..self.samples {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.total += start.elapsed();
            self.iterations += 1;
        }
    }

    fn report(&self, id: &str) {
        if self.iterations == 0 {
            println!("{id:<40} (no samples)");
            return;
        }
        let mean = self.total / self.iterations as u32;
        println!("{id:<40} {mean:>12.2?}/iter ({} samples)", self.iterations);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.criterion.samples = samples.max(1);
        self
    }

    /// Accepted and ignored (this runner has no statistical warm-up phase).
    pub fn warm_up_time(&mut self, _: Duration) -> &mut Self {
        self
    }

    /// Accepted and ignored (sampling is bounded by `sample_size` alone).
    pub fn measurement_time(&mut self, _: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Finishes the group.
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { samples: 10 }
    }
}

impl Criterion {
    /// Applies command-line-style configuration (accepted and ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = id.to_string();
        self.run_one(&full, f);
        self
    }

    fn run_one(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher::new(self.samples);
        f(&mut bencher);
        bencher.report(id);
    }
}

/// Declares a group of benchmark functions (mirror of
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point (mirror of
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion { samples: 3 };
        let mut runs = 0u32;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn iter_batched_calls_setup_per_sample() {
        let mut c = Criterion { samples: 2 };
        let mut setups = 0u32;
        let mut group = c.benchmark_group("g");
        group
            .sample_size(2)
            .bench_with_input(BenchmarkId::new("b", 1), &5u32, |b, &five| {
                b.iter_batched(
                    || {
                        setups += 1;
                        five
                    },
                    |v| v * 2,
                    BatchSize::LargeInput,
                )
            });
        group.finish();
        assert_eq!(setups, 3); // warm-up + 2 samples
    }
}
