//! Anonymity-oriented integration tests: the final output order must not
//! reveal which honest user sent which message, and users must be anonymous
//! among *all* honest users — not only those sharing their entry group (§2.2).

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::SeedableRng;

use atom::core::config::AtomConfig;
use atom::core::message::make_trap_submission;
use atom::core::round::RoundDriver;
use atom::setup_round;
use atom::topology::mixing::{outcome_permutation, simulate_mixing};
use atom::topology::network::SquareNetwork;

fn run_round(seed: u64, users: usize) -> (Vec<String>, Vec<String>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut config = AtomConfig::test_default();
    config.num_groups = 4;
    config.iterations = 3;
    config.message_len = 32;
    let setup = setup_round(&config, &mut rng).unwrap();
    let driver = RoundDriver::new(setup);

    let messages: Vec<String> = (0..users).map(|i| format!("user-{i:02}-message")).collect();
    let submissions: Vec<_> = messages
        .iter()
        .enumerate()
        .map(|(i, msg)| {
            let gid = i % config.num_groups;
            make_trap_submission(
                gid,
                &driver.setup().groups[gid].public_key,
                &driver.setup().trustees.public_key,
                config.round,
                msg.as_bytes(),
                config.message_len,
                &mut rng,
            )
            .unwrap()
            .0
        })
        .collect();
    let output = driver.run_trap_round(&submissions, &mut rng).unwrap();
    let recovered: Vec<String> = output
        .plaintexts
        .iter()
        .map(|p| String::from_utf8(p.iter().copied().take_while(|&b| b != 0).collect()).unwrap())
        .collect();
    (messages, recovered)
}

#[test]
fn output_is_a_permutation_and_not_submission_order() {
    let (submitted, recovered) = run_round(0xA0, 16);
    assert_eq!(recovered.len(), submitted.len());
    let submitted_set: HashSet<&String> = submitted.iter().collect();
    let recovered_set: HashSet<&String> = recovered.iter().collect();
    assert_eq!(submitted_set, recovered_set);
    // With 16 messages the probability the output order equals the input
    // order is 1/16! ≈ 5e-14; if that ever fires, the mix is not permuting.
    assert_ne!(submitted, recovered, "output order leaked submission order");
}

#[test]
fn different_rounds_produce_different_permutations() {
    let (submitted, first) = run_round(0xB0, 12);
    let (_, second) = run_round(0xB1, 12);
    assert_ne!(first, second);
    // Both are permutations of the same submitted set.
    let expected: HashSet<&String> = submitted.iter().collect();
    assert_eq!(first.iter().collect::<HashSet<_>>(), expected);
    assert_eq!(second.iter().collect::<HashSet<_>>(), expected);
}

#[test]
fn users_are_mixed_across_entry_groups() {
    // Users from entry group 0 must not cluster in one exit group: a user is
    // anonymous among all honest users, not just her entry group (§2.2).
    let mut rng = StdRng::seed_from_u64(0xC0);
    let mut config = AtomConfig::test_default();
    config.num_groups = 4;
    config.iterations = 3;
    config.message_len = 32;
    let setup = setup_round(&config, &mut rng).unwrap();
    let driver = RoundDriver::new(setup);

    let users = 32usize;
    let submissions: Vec<_> = (0..users)
        .map(|i| {
            let gid = i % config.num_groups;
            make_trap_submission(
                gid,
                &driver.setup().groups[gid].public_key,
                &driver.setup().trustees.public_key,
                config.round,
                format!("g{gid}-user{i:02}").as_bytes(),
                config.message_len,
                &mut rng,
            )
            .unwrap()
            .0
        })
        .collect();
    let output = driver.run_trap_round(&submissions, &mut rng).unwrap();

    // Find where group-0 users' messages ended up (by holding group).
    let mut exit_groups = Vec::new();
    for (exit_group, messages) in output.per_group.iter().enumerate() {
        for message in messages {
            let text = String::from_utf8_lossy(message);
            if text.starts_with("g0-") {
                exit_groups.push(exit_group);
            }
        }
    }
    assert_eq!(exit_groups.len(), users / config.num_groups);
    let distinct: HashSet<usize> = exit_groups.iter().copied().collect();
    assert!(
        distinct.len() >= 2,
        "all of entry group 0's messages exited together: {exit_groups:?}"
    );
}

#[test]
fn permutation_network_mixes_statistically() {
    // Crypto-free statistical check on the square network itself: over many
    // runs, a fixed message should land in many different output positions.
    let topology = SquareNetwork::paper_default(8);
    let assignment: Vec<usize> = (0..160).map(|m| m % 8).collect();
    let mut positions = HashSet::new();
    for seed in 0..40u64 {
        let outcome = simulate_mixing(&topology, &assignment, seed);
        let perm = outcome_permutation(&outcome);
        positions.insert(perm[0]);
    }
    assert!(
        positions.len() > 20,
        "message 0 landed in only {} distinct positions over 40 runs",
        positions.len()
    );
}
