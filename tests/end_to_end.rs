//! Cross-crate integration tests: full Atom rounds spanning the crypto,
//! topology, core and application layers.

use rand::rngs::StdRng;
use rand::SeedableRng;

use atom::apps::microblog::run_microblog_round;
use atom::core::config::{AtomConfig, Defense, TopologyKind};
use atom::core::message::make_trap_submission;
use atom::core::round::RoundDriver;
use atom::net::LatencyModel;
use atom::setup_round;

fn base_config() -> AtomConfig {
    let mut config = AtomConfig::test_default();
    config.num_groups = 4;
    config.num_servers = 10;
    config.group_size = 3;
    config.iterations = 3;
    config.message_len = 64;
    config
}

#[test]
fn trap_round_with_many_users_delivers_every_message() {
    let mut rng = StdRng::seed_from_u64(100);
    let config = base_config();
    let setup = setup_round(&config, &mut rng).unwrap();
    let driver = RoundDriver::new(setup);

    let messages: Vec<String> = (0..24)
        .map(|i| format!("integration message {i:02}"))
        .collect();
    let submissions: Vec<_> = messages
        .iter()
        .enumerate()
        .map(|(i, msg)| {
            let gid = i % config.num_groups;
            make_trap_submission(
                gid,
                &driver.setup().groups[gid].public_key,
                &driver.setup().trustees.public_key,
                config.round,
                msg.as_bytes(),
                config.message_len,
                &mut rng,
            )
            .unwrap()
            .0
        })
        .collect();

    let output = driver.run_trap_round(&submissions, &mut rng).unwrap();
    assert_eq!(output.plaintexts.len(), messages.len());
    assert_eq!(output.routed_ciphertexts, 2 * messages.len());

    let mut recovered: Vec<String> = output
        .plaintexts
        .iter()
        .map(|p| String::from_utf8(p.iter().copied().take_while(|&b| b != 0).collect()).unwrap())
        .collect();
    recovered.sort();
    let mut expected = messages.clone();
    expected.sort();
    assert_eq!(recovered, expected);
}

#[test]
fn microblogging_app_works_over_both_defenses_and_topologies() {
    for defense in [Defense::Trap, Defense::Nizk] {
        for topology in [TopologyKind::Square, TopologyKind::Butterfly] {
            let mut rng = StdRng::seed_from_u64(7);
            let mut config = base_config();
            config.defense = defense;
            config.topology = topology;
            let setup = setup_round(&config, &mut rng).unwrap();
            let driver = RoundDriver::new(setup);
            let posts = [
                "post one",
                "post two",
                "post three",
                "post four",
                "post five",
            ];
            let (board, _) = run_microblog_round(&driver, &posts, &mut rng).unwrap();
            assert_eq!(board.len(), posts.len(), "{defense:?}/{topology:?}");
            let mut texts: Vec<&str> = board.posts.iter().map(|p| p.text.as_str()).collect();
            texts.sort_unstable();
            let mut expected = posts.to_vec();
            expected.sort_unstable();
            assert_eq!(texts, expected);
        }
    }
}

#[test]
fn latency_model_contributes_to_end_to_end_estimate() {
    let mut rng = StdRng::seed_from_u64(9);
    let config = base_config();
    let setup = setup_round(&config, &mut rng).unwrap();
    let driver = RoundDriver::new(setup).with_latency(LatencyModel::paper_wan(3));
    let submissions: Vec<_> = (0..4)
        .map(|i| {
            let gid = i % config.num_groups;
            make_trap_submission(
                gid,
                &driver.setup().groups[gid].public_key,
                &driver.setup().trustees.public_key,
                config.round,
                b"latency test",
                config.message_len,
                &mut rng,
            )
            .unwrap()
            .0
        })
        .collect();
    let output = driver.run_trap_round(&submissions, &mut rng).unwrap();
    // Two non-exit iterations of 40-160 ms hops each.
    let network = output.timings.network_critical_path;
    assert!(
        network >= std::time::Duration::from_millis(80),
        "{network:?}"
    );
    assert!(output.timings.end_to_end() > network);
}

#[test]
fn parallel_round_matches_sequential_results() {
    let mut rng = StdRng::seed_from_u64(11);
    let config = base_config();
    let setup = setup_round(&config, &mut rng).unwrap();
    let driver = RoundDriver::new(setup).with_parallelism(4);
    let submissions: Vec<_> = (0..8)
        .map(|i| {
            let gid = i % config.num_groups;
            make_trap_submission(
                gid,
                &driver.setup().groups[gid].public_key,
                &driver.setup().trustees.public_key,
                config.round,
                format!("parallel {i}").as_bytes(),
                config.message_len,
                &mut rng,
            )
            .unwrap()
            .0
        })
        .collect();
    let output = driver.run_trap_round(&submissions, &mut rng).unwrap();
    assert_eq!(output.plaintexts.len(), 8);
}
