//! Every internal link in the repo's markdown documentation must resolve.
//!
//! Scans the root-level `*.md` files plus everything under `docs/` for
//! inline links and images (`[text](target)` / `![alt](target)`), skips
//! external schemes, strips `#fragment`s, and asserts the referenced path
//! exists relative to the linking file. CI runs this as the link-checker
//! gate over README / ARCHITECTURE / docs.

use std::path::{Path, PathBuf};

/// The markdown files under the documentation contract: the root docs plus
/// everything in `docs/`. The harness reference dumps (SNIPPETS.md,
/// PAPERS.md, …) quote external material with markdown-shaped fragments
/// and are deliberately out of scope.
fn markdown_files(root: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = ["README.md", "ARCHITECTURE.md", "ROADMAP.md"]
        .iter()
        .map(|name| root.join(name))
        .filter(|path| path.exists())
        .collect();
    if let Ok(entries) = std::fs::read_dir(root.join("docs")) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|ext| ext == "md") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

/// The inline link targets of `text` with their 1-based line numbers.
/// Markdown inline links are `](target)` with no nesting in our docs;
/// code spans that merely *mention* the syntax stay out because they never
/// pair a `](` with a real bracketed label.
fn extract_links(text: &str) -> Vec<(usize, String)> {
    let mut links = Vec::new();
    let bytes = text.as_bytes();
    let mut at = 0;
    while let Some(found) = text[at..].find("](") {
        let open = at + found + 2;
        let Some(len) = text[open..].find(')') else {
            break;
        };
        // Reject matches whose "label" is no label at all (e.g. a stray
        // `](` in a code block): a real inline link opens its `[` on the
        // same line as the `](`.
        let line_start = text[..at + found].rfind('\n').map_or(0, |nl| nl + 1);
        if text[line_start..at + found].contains('[') {
            let line = bytes[..open].iter().filter(|&&b| b == b'\n').count() + 1;
            links.push((line, text[open..open + len].to_string()));
        }
        at = open + len + 1;
    }
    links
}

#[test]
fn internal_markdown_links_resolve() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = markdown_files(root);
    assert!(
        files.iter().any(|f| f.ends_with("README.md")),
        "README.md missing from the documentation set"
    );
    assert!(
        files.len() >= 5,
        "expected the root + docs markdown set, found only {files:?}"
    );

    let mut broken = Vec::new();
    for file in &files {
        let text = std::fs::read_to_string(file)
            .unwrap_or_else(|error| panic!("read {}: {error}", file.display()));
        for (line, raw_target) in extract_links(&text) {
            let target = raw_target.split(' ').next().unwrap_or(""); // strip "title" suffixes
            if target.contains("://") || target.starts_with("mailto:") {
                continue; // external; availability is not this test's concern
            }
            let path = target.split('#').next().unwrap_or("");
            if path.is_empty() {
                continue; // pure in-page fragment
            }
            let base = file.parent().unwrap_or(root);
            if !base.join(path).exists() {
                broken.push(format!(
                    "{}:{line}: broken link `{raw_target}`",
                    file.display()
                ));
            }
        }
    }
    assert!(
        broken.is_empty(),
        "internal markdown links must resolve:\n{}",
        broken.join("\n")
    );
}
