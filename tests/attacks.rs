//! Attack-scenario integration tests: malicious servers and malicious users
//! against both defence variants, and recovery from server failures.

use rand::rngs::StdRng;
use rand::SeedableRng;

use atom::core::adversary::{AdversaryPlan, Misbehavior};
use atom::core::blame::{identify_malicious_users, BlameReason};
use atom::core::config::{AtomConfig, Defense};
use atom::core::error::AtomError;
use atom::core::message::{make_nizk_submission, make_trap_submission, TrapSubmission};
use atom::core::round::RoundDriver;
use atom::setup_round;

fn config(defense: Defense) -> AtomConfig {
    let mut config = AtomConfig::test_default();
    config.defense = defense;
    config.num_groups = 3;
    config.iterations = 3;
    config.message_len = 32;
    config
}

fn trap_submissions(driver: &RoundDriver, count: usize, rng: &mut StdRng) -> Vec<TrapSubmission> {
    let config = &driver.setup().config;
    (0..count)
        .map(|i| {
            let gid = i % config.num_groups;
            make_trap_submission(
                gid,
                &driver.setup().groups[gid].public_key,
                &driver.setup().trustees.public_key,
                config.round,
                format!("attack-test {i}").as_bytes(),
                config.message_len,
                rng,
            )
            .unwrap()
            .0
        })
        .collect()
}

#[test]
fn every_misbehavior_aborts_a_trap_round_or_is_survived_detectably() {
    // Drops and duplications always trip the trap/count checks; replacements
    // trip them whenever the victim is a trap (the paper's 50% argument) —
    // with several replaced slots the abort probability is overwhelming.
    let actions = [
        Misbehavior::DropMessage { slot: 0 },
        Misbehavior::DuplicateMessage { slot: 0, source: 1 },
        Misbehavior::TamperCiphertext { slot: 1 },
    ];
    for (i, action) in actions.into_iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(0xD00 + i as u64);
        let config = config(Defense::Trap);
        let setup = setup_round(&config, &mut rng).unwrap();
        let plan = AdversaryPlan {
            group: 1,
            member: 1,
            iteration: 1,
            action,
        };
        let driver = RoundDriver::new(setup).with_adversary(plan);
        let submissions = trap_submissions(&driver, 9, &mut rng);
        let result = driver.run_trap_round(&submissions, &mut rng);
        assert!(
            matches!(result, Err(AtomError::TrapCheckFailed(_))),
            "action {action:?} was not detected: {result:?}"
        );
    }
}

#[test]
fn nizk_round_detects_every_misbehavior_and_names_the_server() {
    let actions = [
        Misbehavior::DropMessage { slot: 0 },
        Misbehavior::DuplicateMessage { slot: 0, source: 1 },
        Misbehavior::ReplaceMessage { slot: 1 },
        Misbehavior::TamperCiphertext { slot: 0 },
    ];
    for (i, action) in actions.into_iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(0xE00 + i as u64);
        let config = config(Defense::Nizk);
        let setup = setup_round(&config, &mut rng).unwrap();
        let plan = AdversaryPlan {
            group: 0,
            member: 2,
            iteration: 0,
            action,
        };
        let driver = RoundDriver::new(setup).with_adversary(plan);
        let submissions: Vec<_> = (0..6)
            .map(|j| {
                let gid = j % config.num_groups;
                make_nizk_submission(
                    gid,
                    &driver.setup().groups[gid].public_key,
                    format!("nizk {j}").as_bytes(),
                    config.message_len,
                    &mut rng,
                )
                .unwrap()
                .0
            })
            .collect();
        match driver.run_nizk_round(&submissions, &mut rng) {
            Err(AtomError::ProtocolViolation { group, member, .. }) => {
                assert_eq!(group, 0);
                assert_eq!(member, Some(2));
            }
            other => panic!("action {action:?} not detected: {other:?}"),
        }
    }
}

#[test]
fn malicious_user_is_identified_after_disruption() {
    let mut rng = StdRng::seed_from_u64(0xF00);
    let config = config(Defense::Trap);
    let setup = setup_round(&config, &mut rng).unwrap();
    let driver = RoundDriver::new(setup);
    let mut submissions = trap_submissions(&driver, 6, &mut rng);

    // User 4 submits a commitment that matches no trap (a disruption attempt).
    submissions[4].trap_commitment = atom::crypto::commit::commit(b"junk", b"junk");
    let result = driver.run_trap_round(&submissions, &mut rng);
    assert!(matches!(result, Err(AtomError::TrapCheckFailed(_))));

    // §4.6: after the abort, the entry groups decrypt the submissions in the
    // open and identify exactly the offending user.
    let blames = identify_malicious_users(driver.setup(), &submissions).unwrap();
    assert_eq!(blames.len(), 1);
    assert_eq!(blames[0].submission_index, 4);
    assert_eq!(blames[0].reason, BlameReason::TrapCommitmentMismatch);
}

#[test]
fn replayed_submission_is_rejected_at_the_entry_group() {
    // A malicious user replays another user's ciphertext+proof at a different
    // entry group; the group-id binding in EncProof rejects it (§3).
    let mut rng = StdRng::seed_from_u64(0xF10);
    let config = config(Defense::Trap);
    let setup = setup_round(&config, &mut rng).unwrap();
    let driver = RoundDriver::new(setup);
    let mut submissions = trap_submissions(&driver, 4, &mut rng);
    let mut replayed = submissions[0].clone();
    replayed.entry_group = (replayed.entry_group + 1) % config.num_groups;
    submissions.push(replayed);
    assert!(matches!(
        driver.run_trap_round(&submissions, &mut rng),
        Err(AtomError::SubmissionRejected(_))
    ));
}

#[test]
fn round_survives_failures_up_to_the_provisioned_tolerance() {
    let mut rng = StdRng::seed_from_u64(0xF20);
    let mut config = config(Defense::Trap);
    config.required_honest = 2;
    config.group_size = 4;
    config.num_servers = 12;
    let setup = setup_round(&config, &mut rng).unwrap();
    let failed = vec![setup.groups[1].members[2]];
    let driver = RoundDriver::new(setup).with_failures(failed);
    let submissions = trap_submissions(&driver, 6, &mut rng);
    let output = driver.run_trap_round(&submissions, &mut rng).unwrap();
    assert_eq!(output.plaintexts.len(), 6);
}
