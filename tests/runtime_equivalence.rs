//! Determinism and equivalence suite: for identical seeds, the parallel
//! runtime and the sequential `RoundDriver` must produce identical
//! `RoundOutput` plaintexts (byte-for-byte, including grouping) and
//! identical trap/NIZK verdicts — with and without an active adversary.

use atom::core::adversary::{AdversaryPlan, Misbehavior};
use atom::core::config::{AtomConfig, Defense};
use atom::core::error::AtomError;
use atom::core::message::{make_nizk_submission, make_trap_submission};
use atom::core::round::RoundDriver;
use atom::runtime::{Engine, RoundJob, RoundSubmissions};
use atom::setup_round;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 0xA70_5EED;

fn config(defense: Defense) -> AtomConfig {
    let mut config = AtomConfig::test_default();
    config.defense = defense;
    config.num_groups = 3;
    config.iterations = 3;
    config.message_len = 24;
    config
}

fn trap_fixture(
    adversary: Option<AdversaryPlan>,
) -> (RoundDriver, Vec<atom::core::message::TrapSubmission>) {
    let mut rng = StdRng::seed_from_u64(42);
    let setup = setup_round(&config(Defense::Trap), &mut rng).unwrap();
    let submissions: Vec<_> = (0..6)
        .map(|i| {
            let gid = i % setup.config.num_groups;
            make_trap_submission(
                gid,
                &setup.groups[gid].public_key,
                &setup.trustees.public_key,
                setup.config.round,
                format!("equiv {i}").as_bytes(),
                setup.config.message_len,
                &mut rng,
            )
            .unwrap()
            .0
        })
        .collect();
    let mut driver = RoundDriver::new(setup);
    if let Some(plan) = adversary {
        driver = driver.with_adversary(plan);
    }
    (driver, submissions)
}

fn nizk_fixture(
    adversary: Option<AdversaryPlan>,
) -> (RoundDriver, Vec<atom::core::message::NizkSubmission>) {
    let mut rng = StdRng::seed_from_u64(43);
    let setup = setup_round(&config(Defense::Nizk), &mut rng).unwrap();
    let submissions: Vec<_> = (0..6)
        .map(|i| {
            let gid = i % setup.config.num_groups;
            make_nizk_submission(
                gid,
                &setup.groups[gid].public_key,
                format!("equiv {i}").as_bytes(),
                setup.config.message_len,
                &mut rng,
            )
            .unwrap()
            .0
        })
        .collect();
    let mut driver = RoundDriver::new(setup);
    if let Some(plan) = adversary {
        driver = driver.with_adversary(plan);
    }
    (driver, submissions)
}

#[test]
fn trap_round_outputs_are_byte_identical() {
    let (driver, submissions) = trap_fixture(None);
    let sequential = driver
        .run_trap_round(&submissions, &mut StdRng::seed_from_u64(SEED))
        .unwrap();

    for workers in [1, 4] {
        let engine = Engine::with_workers(workers);
        let mut job = RoundJob::new(
            driver.setup().clone(),
            RoundSubmissions::Trap(submissions.clone()),
            SEED,
        );
        job.adversary = None;
        let report = engine.run_round(job).unwrap();
        assert_eq!(
            report.output.plaintexts, sequential.plaintexts,
            "plaintext bytes must match at {workers} workers"
        );
        assert_eq!(report.output.per_group, sequential.per_group);
        assert_eq!(
            report.output.routed_ciphertexts,
            sequential.routed_ciphertexts
        );
    }
}

#[test]
fn nizk_round_outputs_are_byte_identical() {
    let (driver, submissions) = nizk_fixture(None);
    let sequential = driver
        .run_nizk_round(&submissions, &mut StdRng::seed_from_u64(SEED))
        .unwrap();

    for workers in [1, 4] {
        let engine = Engine::with_workers(workers);
        let report = engine
            .run_round(RoundJob::new(
                driver.setup().clone(),
                RoundSubmissions::Nizk(submissions.clone()),
                SEED,
            ))
            .unwrap();
        assert_eq!(report.output.plaintexts, sequential.plaintexts);
        assert_eq!(report.output.per_group, sequential.per_group);
    }
}

#[test]
fn parallel_runs_are_reproducible_across_schedules() {
    let (driver, submissions) = trap_fixture(None);
    let mut baseline = None;
    for workers in [1, 2, 8] {
        let report = Engine::with_workers(workers)
            .run_round(RoundJob::new(
                driver.setup().clone(),
                RoundSubmissions::Trap(submissions.clone()),
                SEED,
            ))
            .unwrap();
        match &baseline {
            None => baseline = Some(report.output.plaintexts),
            Some(expected) => assert_eq!(
                &report.output.plaintexts, expected,
                "scheduling must not influence output bytes"
            ),
        }
    }
}

#[test]
fn different_seeds_change_ciphertexts_not_delivery() {
    let (driver, submissions) = trap_fixture(None);
    let a = Engine::with_workers(2)
        .run_round(RoundJob::new(
            driver.setup().clone(),
            RoundSubmissions::Trap(submissions.clone()),
            SEED,
        ))
        .unwrap();
    let b = Engine::with_workers(2)
        .run_round(RoundJob::new(
            driver.setup().clone(),
            RoundSubmissions::Trap(submissions),
            SEED + 1,
        ))
        .unwrap();
    let sort = |mut v: Vec<Vec<u8>>| {
        v.sort();
        v
    };
    // Same delivered set, different permutation/randomness path is allowed.
    assert_eq!(sort(a.output.plaintexts), sort(b.output.plaintexts));
}

#[test]
fn trap_adversary_verdict_matches_sequential_driver() {
    let plan = AdversaryPlan {
        group: 1,
        member: 1,
        iteration: 1,
        action: Misbehavior::DropMessage { slot: 0 },
    };
    let (driver, submissions) = trap_fixture(Some(plan));
    let sequential = driver.run_trap_round(&submissions, &mut StdRng::seed_from_u64(SEED));
    assert!(matches!(sequential, Err(AtomError::TrapCheckFailed(_))));

    let mut job = RoundJob::new(
        driver.setup().clone(),
        RoundSubmissions::Trap(submissions),
        SEED,
    );
    job.adversary = Some(plan);
    let parallel = Engine::with_workers(4).run_round(job);
    assert!(
        matches!(parallel, Err(AtomError::TrapCheckFailed(_))),
        "parallel verdict diverged: {parallel:?}"
    );
}

#[test]
fn nizk_adversary_verdict_matches_sequential_driver() {
    let plan = AdversaryPlan {
        group: 2,
        member: 2,
        iteration: 1,
        action: Misbehavior::ReplaceMessage { slot: 0 },
    };
    let (driver, submissions) = nizk_fixture(Some(plan));
    let sequential = driver.run_nizk_round(&submissions, &mut StdRng::seed_from_u64(SEED));
    let Err(AtomError::ProtocolViolation {
        group: seq_group,
        member: seq_member,
        ..
    }) = sequential
    else {
        panic!("sequential driver must detect the violation");
    };

    let mut job = RoundJob::new(
        driver.setup().clone(),
        RoundSubmissions::Nizk(submissions),
        SEED,
    );
    job.adversary = Some(plan);
    let parallel = Engine::with_workers(4).run_round(job);
    let Err(AtomError::ProtocolViolation { group, member, .. }) = parallel else {
        panic!("parallel engine must detect the violation: {parallel:?}");
    };
    assert_eq!(group, seq_group);
    assert_eq!(member, seq_member);
}

#[test]
fn butterfly_topology_is_equivalent_too() {
    let mut rng = StdRng::seed_from_u64(44);
    let mut config = config(Defense::Trap);
    config.num_groups = 4;
    config.topology = atom::core::config::TopologyKind::Butterfly;
    let setup = setup_round(&config, &mut rng).unwrap();
    let submissions: Vec<_> = (0..4)
        .map(|i| {
            let gid = i % config.num_groups;
            make_trap_submission(
                gid,
                &setup.groups[gid].public_key,
                &setup.trustees.public_key,
                config.round,
                format!("bfly {i}").as_bytes(),
                config.message_len,
                &mut rng,
            )
            .unwrap()
            .0
        })
        .collect();
    let driver = RoundDriver::new(setup);
    let sequential = driver
        .run_trap_round(&submissions, &mut StdRng::seed_from_u64(SEED))
        .unwrap();
    let report = Engine::with_workers(3)
        .run_round(RoundJob::new(
            driver.setup().clone(),
            RoundSubmissions::Trap(submissions),
            SEED,
        ))
        .unwrap();
    assert_eq!(report.output.plaintexts, sequential.plaintexts);
    assert_eq!(report.output.per_group, sequential.per_group);
}
